#ifndef BLAZEIT_FILTERS_LABEL_FILTER_H_
#define BLAZEIT_FILTERS_LABEL_FILTER_H_

#include <string>
#include <vector>

#include "filters/filter.h"
#include "nn/specialized_nn.h"

namespace blazeit {

/// Label-based filtering (Section 8, the NoScope-style filter class): a
/// specialized NN scores each frame by the probability that the queried
/// classes are present in the required multiplicity. Frames the NN is
/// confident are irrelevant are discarded before detection.
class LabelFilter : public FrameFilter {
 public:
  /// `min_counts[h]` is the required count for the NN's head `h`.
  LabelFilter(SpecializedNN nn, std::vector<int> min_counts)
      : nn_(std::move(nn)), min_counts_(std::move(min_counts)) {}

  std::string name() const override { return "label"; }

  double Score(const SyntheticVideo& video, int64_t frame) const override {
    return nn_.QueryConfidence(video, frame, min_counts_);
  }

  std::vector<double> ScoreBatch(
      const SyntheticVideo& video,
      const std::vector<int64_t>& frames) const override {
    std::vector<float> scores =
        nn_.QueryConfidencesForFrames(video, frames, min_counts_);
    return std::vector<double>(scores.begin(), scores.end());
  }

  bool IsNeuralNetwork() const override { return true; }

  const SpecializedNN& nn() const { return nn_; }

 private:
  SpecializedNN nn_;
  std::vector<int> min_counts_;
};

}  // namespace blazeit

#endif  // BLAZEIT_FILTERS_LABEL_FILTER_H_
