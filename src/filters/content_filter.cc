#include "filters/content_filter.h"

// Implementation is inline; this file anchors the vtable.
