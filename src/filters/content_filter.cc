#include "filters/content_filter.h"

#include "exec/frame_pipeline.h"

namespace blazeit {

std::vector<double> ContentFilter::ScoreBatch(
    const SyntheticVideo& video, const std::vector<int64_t>& frames) const {
  const int64_t n = static_cast<int64_t>(frames.size());
  std::vector<double> out(frames.size(), 0.0);

  // Serve cache hits first (serial: the store read path is lock-guarded
  // but ordered access keeps hit accounting reproducible), leaving the
  // misses for the parallel sweep.
  std::vector<int64_t> miss;
  ArtifactCache* cache = score_cache();
  if (cache == nullptr) {
    miss.resize(frames.size());
    std::iota(miss.begin(), miss.end(), int64_t{0});
  } else {
    const uint64_t ns = HashCombine(cache_identity(), video.fingerprint());
    std::vector<double> cached;
    for (int64_t i = 0; i < n; ++i) {
      if (cache->GetFrameDoubles(ns, frames[static_cast<size_t>(i)],
                                 &cached) &&
          cached.size() == 1) {
        out[static_cast<size_t>(i)] = cached[0];
      } else {
        miss.push_back(i);
      }
    }
  }

  // Misses render and score in fixed-size shards with per-worker scratch;
  // each shard writes only its own disjoint slots of `out`, so scores are
  // bit-identical to the serial loop at any thread count.
  exec::FramePipeline::Run(
      static_cast<int64_t>(miss.size()),
      [&](int64_t begin, int64_t end, exec::FramePipeline::Scratch* scratch) {
        for (int64_t j = begin; j < end; ++j) {
          const size_t slot = static_cast<size_t>(miss[static_cast<size_t>(j)]);
          out[slot] = ScoreInto(video, frames[slot], &scratch->image);
        }
      });

  if (cache != nullptr) {
    const uint64_t ns = HashCombine(cache_identity(), video.fingerprint());
    for (int64_t i : miss) {
      cache->PutFrameDoubles(ns, frames[static_cast<size_t>(i)],
                             {out[static_cast<size_t>(i)]});
    }
  }
  return out;
}

}  // namespace blazeit
