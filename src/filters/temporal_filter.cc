#include "filters/temporal_filter.h"

#include <algorithm>

namespace blazeit {

int64_t TemporalFilter::StrideForPersistence(int64_t min_frames) {
  if (min_frames <= 2) return 1;
  // Sampling every (K-1)/2 frames guarantees at least two samples land
  // inside any K-frame window, so no K-frame event is missed even with
  // detector flicker on one sample.
  return std::max<int64_t>(1, (min_frames - 1) / 2);
}

Status TemporalFilter::SetTimeRange(int64_t begin_frame, int64_t end_frame) {
  if (begin_frame < 0)
    return Status::InvalidArgument("begin_frame must be non-negative");
  if (end_frame != -1 && end_frame <= begin_frame)
    return Status::InvalidArgument("end_frame must exceed begin_frame");
  begin_frame_ = begin_frame;
  end_frame_ = end_frame;
  return Status::OK();
}

std::vector<int64_t> TemporalFilter::CandidateFrames(
    int64_t num_frames) const {
  std::vector<int64_t> out;
  int64_t end = end_frame_ == -1 ? num_frames : std::min(end_frame_,
                                                         num_frames);
  for (int64_t t = begin_frame_; t < end; t += stride_) out.push_back(t);
  return out;
}

double TemporalFilter::Selectivity(int64_t num_frames) const {
  if (num_frames <= 0) return 0.0;
  return static_cast<double>(CandidateFrames(num_frames).size()) /
         static_cast<double>(num_frames);
}

}  // namespace blazeit
