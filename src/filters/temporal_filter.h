#ifndef BLAZEIT_FILTERS_TEMPORAL_FILTER_H_
#define BLAZEIT_FILTERS_TEMPORAL_FILTER_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace blazeit {

/// Temporal filtering (Section 8): restricts the candidate frame set by
/// (a) time-range constraints in the query, and (b) subsampling derived
/// from persistence constraints — an object required to be visible for at
/// least K frames is seen by sampling every (K-1)/2 frames, so most frames
/// never need to be decoded or detected.
class TemporalFilter {
 public:
  TemporalFilter() = default;

  /// Derives the subsampling stride from a persistence constraint of at
  /// least `min_frames` consecutive frames (paper: K=30 -> every 14th).
  static int64_t StrideForPersistence(int64_t min_frames);

  void set_stride(int64_t stride) { stride_ = stride; }
  int64_t stride() const { return stride_; }

  /// Restricts to [begin, end) frames ("query the video from 10AM to
  /// 11AM"); pass end = -1 for "until the end of the video".
  Status SetTimeRange(int64_t begin_frame, int64_t end_frame);
  int64_t begin_frame() const { return begin_frame_; }
  int64_t end_frame() const { return end_frame_; }

  /// Candidate frames of a `num_frames`-long video after both
  /// restrictions.
  std::vector<int64_t> CandidateFrames(int64_t num_frames) const;

  /// Fraction of the video surviving the filter (for plan costing).
  double Selectivity(int64_t num_frames) const;

 private:
  int64_t stride_ = 1;
  int64_t begin_frame_ = 0;
  int64_t end_frame_ = -1;  // -1 = end of video
};

}  // namespace blazeit

#endif  // BLAZEIT_FILTERS_TEMPORAL_FILTER_H_
