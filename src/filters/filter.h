#ifndef BLAZEIT_FILTERS_FILTER_H_
#define BLAZEIT_FILTERS_FILTER_H_

#include <string>
#include <vector>

#include "util/artifact_cache.h"
#include "util/random.h"
#include "video/synthetic_video.h"

namespace blazeit {

/// A per-frame scoring filter used to discard frames before object
/// detection (Section 8). Filters expose a continuous score; the threshold
/// is calibrated on the held-out day so that no positive frame scores
/// below it (the no-false-negatives regime the paper evaluates).
class FrameFilter {
 public:
  virtual ~FrameFilter() = default;

  virtual std::string name() const = 0;

  /// Relevance score for the frame; higher means more likely to satisfy
  /// the query predicate.
  virtual double Score(const SyntheticVideo& video, int64_t frame) const = 0;

  /// Scores many frames; the default loops Score (reading/writing the
  /// score cache when one is set), NN-backed filters override with batched
  /// inference.
  virtual std::vector<double> ScoreBatch(
      const SyntheticVideo& video, const std::vector<int64_t>& frames) const {
    std::vector<double> out;
    out.reserve(frames.size());
    if (score_cache_ == nullptr) {
      for (int64_t frame : frames) out.push_back(Score(video, frame));
      return out;
    }
    const uint64_t ns = HashCombine(cache_identity_, video.fingerprint());
    std::vector<double> cached;
    for (int64_t frame : frames) {
      if (score_cache_->GetFrameDoubles(ns, frame, &cached) &&
          cached.size() == 1) {
        out.push_back(cached[0]);
      } else {
        const double score = Score(video, frame);
        score_cache_->PutFrameDoubles(ns, frame, {score});
        out.push_back(score);
      }
    }
    return out;
  }

  /// Enables persistent score caching for filters whose Score renders
  /// frames (content filtering). `identity` must fingerprint everything
  /// that determines Score besides (video, frame) — scores are doubles and
  /// are cached bit-exactly, so calibrated thresholds behave identically
  /// warm or cold. NN-backed filters ignore this (their outputs are cached
  /// at the NN layer).
  void set_score_cache(ArtifactCache* cache, uint64_t identity) {
    score_cache_ = cache;
    cache_identity_ = identity;
  }

  /// True for specialized-NN-backed filters (charged at the NN rate in the
  /// cost model) as opposed to simple filters (filter rate).
  virtual bool IsNeuralNetwork() const { return false; }

  double threshold() const { return threshold_; }
  void set_threshold(double threshold) { threshold_ = threshold; }

  /// Frames scoring at or above the calibrated threshold survive.
  bool Pass(const SyntheticVideo& video, int64_t frame) const {
    return Score(video, frame) >= threshold_;
  }

 protected:
  /// Cache wiring for subclasses overriding ScoreBatch (content filtering
  /// reads misses before and writes scores after its parallel sweep).
  ArtifactCache* score_cache() const { return score_cache_; }
  uint64_t cache_identity() const { return cache_identity_; }

 private:
  double threshold_ = 0.0;
  ArtifactCache* score_cache_ = nullptr;
  uint64_t cache_identity_ = 0;
};

}  // namespace blazeit

#endif  // BLAZEIT_FILTERS_FILTER_H_
