#include "filters/filter.h"

// FrameFilter is header-only today; this translation unit anchors the
// vtable so the library exports a single copy.
