#ifndef BLAZEIT_FRAMEQL_AST_H_
#define BLAZEIT_FRAMEQL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace blazeit {

/// Comparison operators of FrameQL predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// Evaluates `lhs op rhs` for numeric comparisons.
bool EvalCmp(double lhs, CmpOp op, double rhs);

/// What the query projects.
enum class Projection {
  kStar,                // SELECT *
  kTimestamp,           // SELECT timestamp
  kFcount,              // SELECT FCOUNT(*)   (frame-averaged count)
  kCountStar,           // SELECT COUNT(*)
  kCountDistinctTrack,  // SELECT COUNT(DISTINCT trackid)
};

const char* ProjectionName(Projection projection);

/// One conjunct of the WHERE clause.
struct Predicate {
  enum class Kind {
    kClassEq,    // class = 'bus'
    kUdf,        // redness(content) >= 0.3
    kUdfString,  // classify(content) = 'sedan'
    kArea,       // area(mask) > 50000          (pixel units)
    kSpatial,    // xmax(mask) < 720            (field name in `name`)
    kTimestamp,  // timestamp >= 600            (seconds)
  };
  Kind kind = Kind::kClassEq;
  /// UDF name, spatial field (xmin/xmax/ymin/ymax), or empty.
  std::string name;
  CmpOp op = CmpOp::kEq;
  double value = 0.0;
  /// For kClassEq / kUdfString.
  std::string str_value;

  std::string ToString() const;
};

/// One conjunct of the HAVING clause.
struct HavingClause {
  enum class Kind {
    kClassCount,  // SUM(class='bus') >= 1   (per-timestamp group)
    kGroupSize,   // COUNT(*) > 15           (per-trackid group)
  };
  Kind kind = Kind::kClassCount;
  std::string class_name;
  CmpOp op = CmpOp::kGe;
  double value = 0.0;

  std::string ToString() const;
};

/// Parsed FrameQL query (Section 4, Table 2). Syntactic sugar beyond
/// standard SQL: FCOUNT, ERROR WITHIN, [AT] CONFIDENCE, FNR/FPR WITHIN,
/// LIMIT ... GAP.
struct FrameQLQuery {
  Projection projection = Projection::kStar;
  std::string table;
  std::vector<Predicate> where;
  /// Empty, "timestamp", or "trackid".
  std::string group_by;
  std::vector<HavingClause> having;
  std::optional<int64_t> limit;
  std::optional<int64_t> gap;
  std::optional<double> error_within;
  /// Confidence level in (0,1); `CONFIDENCE 95%` parses to 0.95.
  std::optional<double> confidence;
  std::optional<double> fnr_within;
  std::optional<double> fpr_within;

  /// Round-trips to readable FrameQL (not necessarily token-identical).
  std::string ToString() const;
};

}  // namespace blazeit

#endif  // BLAZEIT_FRAMEQL_AST_H_
