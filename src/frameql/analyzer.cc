#include "frameql/analyzer.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace blazeit {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kAggregate:
      return "aggregate";
    case QueryKind::kCountDistinct:
      return "count-distinct";
    case QueryKind::kScrubbing:
      return "scrubbing";
    case QueryKind::kSelection:
      return "selection";
    case QueryKind::kBinarySelect:
      return "binary-select";
    case QueryKind::kExhaustive:
      return "exhaustive";
  }
  return "?";
}

namespace {

/// Converts a spatial threshold to normalized coordinates: values above 1
/// are pixel coordinates in the stream's nominal resolution.
double NormalizeSpatial(double value, const std::string& field,
                        const StreamConfig& stream) {
  if (value <= 1.0) return value;
  if (field == "xmin" || field == "xmax") return value / stream.width;
  return value / stream.height;
}

Status FoldSpatialIntoRoi(const Predicate& pred, const StreamConfig& stream,
                          Rect* roi) {
  double v = NormalizeSpatial(pred.value, pred.name, stream);
  // Only constraints that shrink the ROI from one side are supported,
  // matching the paper's example (xmax(mask) < 720).
  if (pred.name == "xmax" && (pred.op == CmpOp::kLt || pred.op == CmpOp::kLe)) {
    roi->xmax = std::min(roi->xmax, v);
  } else if (pred.name == "xmin" &&
             (pred.op == CmpOp::kGt || pred.op == CmpOp::kGe)) {
    roi->xmin = std::max(roi->xmin, v);
  } else if (pred.name == "ymax" &&
             (pred.op == CmpOp::kLt || pred.op == CmpOp::kLe)) {
    roi->ymax = std::min(roi->ymax, v);
  } else if (pred.name == "ymin" &&
             (pred.op == CmpOp::kGt || pred.op == CmpOp::kGe)) {
    roi->ymin = std::max(roi->ymin, v);
  } else {
    return Status::Unimplemented(StrFormat(
        "unsupported spatial constraint: %s", pred.ToString().c_str()));
  }
  if (roi->Empty())
    return Status::InvalidArgument("spatial predicates yield an empty ROI");
  return Status::OK();
}

/// Converts `op value` on a count into a minimum-count requirement.
Result<int> MinCountFromComparison(CmpOp op, double value) {
  switch (op) {
    case CmpOp::kGe:
      return static_cast<int>(std::ceil(value));
    case CmpOp::kGt:
      return static_cast<int>(std::floor(value)) + 1;
    case CmpOp::kEq:
      return static_cast<int>(value);  // treated as at-least for scrubbing
    default:
      return Status::Unimplemented(
          "scrubbing requires >=, > or = count comparisons");
  }
}

}  // namespace

SketchSupport ComputeSketchSupport(const AnalyzedQuery& query) {
  SketchSupport s;
  switch (query.kind) {
    case QueryKind::kScrubbing:
      // The importance ranking and the scan fallback both verify frames
      // against the class-count requirements, which sketches bound.
      s.class_counts = !query.requirements.empty();
      break;
    case QueryKind::kCountDistinct:
      // A segment with no detections of the counted class cannot open or
      // extend a track; skipping it only resets open tracks, which empty
      // frames do anyway.
      s.class_presence = true;
      break;
    case QueryKind::kExhaustive:
      s.class_counts = !query.requirements.empty();
      s.class_presence = query.sel_class >= 0;
      s.roi = query.has_roi;
      s.min_area = query.min_area_px > 0;
      // With no predicates at all, the scan returns frames with any
      // detection — which the class histograms bound too.
      s.any_detection = !s.class_counts && !s.class_presence && !s.roi &&
                        !s.min_area && query.udf_predicates.empty();
      break;
    case QueryKind::kAggregate:
    case QueryKind::kSelection:
    case QueryKind::kBinarySelect:
      // Sampling-based estimators and calibrated filters depend on the
      // full frame population; segment skipping would bias them.
      break;
  }
  return s;
}

namespace {

/// AnalyzeQuery body; the public wrapper annotates sketch support on the
/// classified result (one place instead of one per return path).
Result<AnalyzedQuery> AnalyzeQueryImpl(const FrameQLQuery& query,
                                       const StreamConfig& stream) {
  AnalyzedQuery out;
  out.raw = query;
  out.table = query.table;
  if (query.table != stream.name) {
    return Status::InvalidArgument(
        StrFormat("query table '%s' does not match stream '%s'",
                  query.table.c_str(), stream.name.c_str()));
  }

  // --- fold WHERE conjuncts ---
  int class_id = -1;
  for (const Predicate& pred : query.where) {
    switch (pred.kind) {
      case Predicate::Kind::kClassEq: {
        BLAZEIT_ASSIGN_OR_RETURN(int id, ClassIdFromName(pred.str_value));
        if (class_id != -1 && class_id != id) {
          return Status::InvalidArgument(
              "conflicting class = predicates (a record has one class)");
        }
        class_id = id;
        break;
      }
      case Predicate::Kind::kUdf:
      case Predicate::Kind::kUdfString:
        out.udf_predicates.push_back(pred);
        break;
      case Predicate::Kind::kArea:
        if (pred.op == CmpOp::kGt || pred.op == CmpOp::kGe) {
          out.min_area_px = std::max(out.min_area_px, pred.value);
        } else {
          return Status::Unimplemented(
              "area(mask) supports lower bounds (>, >=) only");
        }
        break;
      case Predicate::Kind::kSpatial:
        BLAZEIT_RETURN_NOT_OK(FoldSpatialIntoRoi(pred, stream, &out.roi));
        out.has_roi = true;
        break;
      case Predicate::Kind::kTimestamp:
        switch (pred.op) {
          case CmpOp::kGe:
          case CmpOp::kGt:
            // Tightest lower bound wins; on a tie the exclusive form is
            // tighter.
            if (pred.value > out.begin_sec) {
              out.begin_sec = pred.value;
              out.begin_exclusive = pred.op == CmpOp::kGt;
            } else if (pred.value == out.begin_sec &&
                       pred.op == CmpOp::kGt) {
              out.begin_exclusive = true;
            }
            break;
          case CmpOp::kLe:
          case CmpOp::kLt:
            // Tightest upper bound wins; on a tie the exclusive form is
            // tighter.
            if (out.end_sec < 0 || pred.value < out.end_sec) {
              out.end_sec = pred.value;
              out.end_inclusive = pred.op == CmpOp::kLe;
            } else if (pred.value == out.end_sec && pred.op == CmpOp::kLt) {
              out.end_inclusive = false;
            }
            break;
          default:
            return Status::Unimplemented(
                "timestamp supports range comparisons only");
        }
        break;
    }
  }
  if (class_id != -1 && stream.FindClass(class_id) == nullptr) {
    // Legal: the class simply never appears; executors handle zero
    // training data by falling back (Algorithm 1).
  }

  // --- HAVING clauses ---
  for (const HavingClause& clause : query.having) {
    if (clause.kind == HavingClause::Kind::kClassCount) {
      if (query.group_by != "timestamp") {
        return Status::InvalidArgument(
            "SUM(class=...) HAVING requires GROUP BY timestamp");
      }
      ClassCountRequirement req;
      BLAZEIT_ASSIGN_OR_RETURN(req.class_id,
                               ClassIdFromName(clause.class_name));
      BLAZEIT_ASSIGN_OR_RETURN(req.min_count,
                               MinCountFromComparison(clause.op, clause.value));
      out.requirements.push_back(req);
    } else {  // kGroupSize
      if (query.group_by != "trackid") {
        return Status::InvalidArgument(
            "COUNT(*) HAVING requires GROUP BY trackid");
      }
      BLAZEIT_ASSIGN_OR_RETURN(int min_frames,
                               MinCountFromComparison(clause.op, clause.value));
      out.persistence_frames =
          std::max<int64_t>(out.persistence_frames, min_frames);
    }
  }

  out.limit = query.limit.value_or(0);
  out.gap = query.gap.value_or(0);
  if (query.confidence) out.confidence = *query.confidence;
  if (query.error_within) out.error = *query.error_within;

  // --- classification (rule-based, Section 5) ---
  if (query.projection == Projection::kFcount ||
      query.projection == Projection::kCountStar) {
    if (class_id == -1) {
      return Status::InvalidArgument(
          "aggregation queries need a class = '...' predicate");
    }
    out.kind = QueryKind::kAggregate;
    out.agg_class = class_id;
    out.scale_to_total = query.projection == Projection::kCountStar;
    return out;
  }
  if (query.projection == Projection::kCountDistinctTrack) {
    if (class_id == -1) {
      return Status::InvalidArgument(
          "COUNT(DISTINCT trackid) needs a class = '...' predicate");
    }
    out.kind = QueryKind::kCountDistinct;
    out.agg_class = class_id;
    return out;
  }
  if (query.projection == Projection::kTimestamp) {
    if (!out.requirements.empty() && out.limit > 0) {
      out.kind = QueryKind::kScrubbing;
      return out;
    }
    if (class_id != -1 && (query.fnr_within || query.fpr_within)) {
      out.kind = QueryKind::kBinarySelect;
      out.sel_class = class_id;
      out.fnr = query.fnr_within.value_or(0.0);
      out.fpr = query.fpr_within.value_or(0.0);
      return out;
    }
    if (class_id != -1) {
      // Timestamp selection without bounds: treat as scrubbing with
      // "at least one" if LIMIT present, else exhaustive.
      if (out.limit > 0) {
        out.kind = QueryKind::kScrubbing;
        out.requirements.push_back({class_id, 1});
        return out;
      }
    }
    out.kind = QueryKind::kExhaustive;
    out.sel_class = class_id;
    return out;
  }
  // SELECT *
  if (class_id != -1) {
    out.kind = QueryKind::kSelection;
    out.sel_class = class_id;
    return out;
  }
  out.kind = QueryKind::kExhaustive;
  out.sel_class = class_id;
  return out;
}

}  // namespace

Result<AnalyzedQuery> AnalyzeQuery(const FrameQLQuery& query,
                                   const StreamConfig& stream) {
  BLAZEIT_ASSIGN_OR_RETURN(AnalyzedQuery out, AnalyzeQueryImpl(query, stream));
  out.sketch = ComputeSketchSupport(out);
  return out;
}

FrameWindow ClampFrameWindow(FrameWindow window, int64_t num_frames) {
  FrameWindow out;
  out.begin = std::clamp<int64_t>(window.begin, 0, num_frames);
  const int64_t end = window.end < 0 ? num_frames : window.end;
  out.end = std::clamp<int64_t>(end, out.begin, num_frames);
  return out;
}

Result<FrameWindow> ResolveFrameWindow(const AnalyzedQuery& query, int fps,
                                       int64_t num_frames) {
  // A genuinely inverted range (end before begin, in seconds) is a query
  // error; a merely narrow range that lands between frames resolves to an
  // empty window and an ordinary empty result below.
  if (query.end_sec >= 0 && query.end_sec < query.begin_sec) {
    return Status::InvalidArgument(
        "time range is empty: its end precedes its begin");
  }
  // Frame t is stamped t/fps seconds, so the window boundaries are exact:
  //   timestamp >= b  -> first frame at or after b   -> ceil(b*fps)
  //   timestamp >  b  -> first frame strictly after  -> ceil, +1 on exact
  //   timestamp <= e  -> last frame at or before e   -> floor(e*fps) + 1
  //   timestamp <  e  -> frames strictly before      -> ceil(e*fps)
  // The products should be integral whenever the bound names a frame
  // instant, but the double multiply can land an ulp off (31.0/30 * 30 ==
  // 31.000000000000004); snap near-integers first so ceil/floor — and the
  // exact-equality exclusivity bump — see the intended value.
  const auto snap = [](double v) {
    const double r = std::round(v);
    return std::abs(v - r) <= 1e-9 * std::max(1.0, std::abs(v)) ? r : v;
  };
  // Saturating double->frame cast: an extreme literal (timestamp >=
  // 1e300) must clamp to the day bounds, not overflow the int64 cast
  // (UB whose wrapped value would invert the window).
  const auto to_frame = [num_frames](double v) -> int64_t {
    if (v >= static_cast<double>(num_frames)) return num_frames;
    if (v <= 0.0) return 0;
    return static_cast<int64_t>(v);
  };
  FrameWindow window;
  const double b = snap(query.begin_sec * fps);
  window.begin = to_frame(std::ceil(b));
  if (query.begin_exclusive && static_cast<double>(window.begin) == b) {
    ++window.begin;
  }
  if (query.end_sec < 0) {
    window.end = -1;
  } else {
    const double e = snap(query.end_sec * fps);
    window.end = query.end_inclusive ? to_frame(std::floor(e)) + 1
                                     : to_frame(std::ceil(e));
    window.end = std::max(window.end, window.begin);  // narrow -> empty
  }
  return ClampFrameWindow(window, num_frames);
}

}  // namespace blazeit
