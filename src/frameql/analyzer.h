#ifndef BLAZEIT_FRAMEQL_ANALYZER_H_
#define BLAZEIT_FRAMEQL_ANALYZER_H_

#include <string>
#include <vector>

#include "frameql/ast.h"
#include "util/status.h"
#include "video/geometry.h"
#include "video/scene_model.h"

namespace blazeit {

/// The query classes BlazeIt's rule-based optimizer recognizes
/// (Sections 5-8). Anything else runs exhaustively.
enum class QueryKind {
  kAggregate,      // FCOUNT/COUNT with an error tolerance (Section 6)
  kCountDistinct,  // COUNT(DISTINCT trackid)
  kScrubbing,      // timestamp selection with class-count HAVING + LIMIT
                   // (Section 7)
  kSelection,      // SELECT * with content predicates (Section 8)
  kBinarySelect,   // NoScope-style timestamp selection with FNR/FPR bounds
  kExhaustive,     // no optimization applies
};

const char* QueryKindName(QueryKind kind);

/// "At least N instances of this class" requirement extracted from a
/// scrubbing query's HAVING clauses.
struct ClassCountRequirement {
  int class_id = kCar;
  int min_count = 1;
};

/// Semantic summary of a FrameQL query against a specific stream: what the
/// optimizer consumes. Spatial predicates are folded into an ROI,
/// timestamp predicates into a time range, pixel-valued thresholds are
/// normalized using the stream's nominal resolution.
struct AnalyzedQuery {
  QueryKind kind = QueryKind::kExhaustive;
  std::string table;

  // --- aggregation ---
  int agg_class = -1;
  double error = 0.1;
  double confidence = 0.95;
  /// True for COUNT(*) (scaled by frame count); false for FCOUNT(*).
  bool scale_to_total = false;

  // --- scrubbing ---
  std::vector<ClassCountRequirement> requirements;
  int64_t limit = 0;
  int64_t gap = 0;

  // --- selection ---
  int sel_class = -1;
  /// Content UDF conjuncts (kUdf predicates).
  std::vector<Predicate> udf_predicates;
  /// Minimum pixel area from area(mask) predicates; 0 if absent.
  double min_area_px = 0.0;
  /// ROI folded from spatial predicates; the unit rect if absent.
  Rect roi{0, 0, 1, 1};
  bool has_roi = false;
  /// Minimum track persistence (frames) from HAVING COUNT(*) on trackid.
  int64_t persistence_frames = 0;
  /// Time range in seconds; end < 0 means "to the end".
  double begin_sec = 0.0;
  double end_sec = -1.0;

  // --- binary select ---
  double fnr = 0.0;
  double fpr = 0.0;

  /// The parsed query this analysis came from.
  FrameQLQuery raw;
};

/// Classifies and validates a parsed query against a stream's schema.
Result<AnalyzedQuery> AnalyzeQuery(const FrameQLQuery& query,
                                   const StreamConfig& stream);

}  // namespace blazeit

#endif  // BLAZEIT_FRAMEQL_ANALYZER_H_
