#ifndef BLAZEIT_FRAMEQL_ANALYZER_H_
#define BLAZEIT_FRAMEQL_ANALYZER_H_

#include <string>
#include <vector>

#include "frameql/ast.h"
#include "util/status.h"
#include "video/geometry.h"
#include "video/scene_model.h"

namespace blazeit {

/// The query classes BlazeIt's rule-based optimizer recognizes
/// (Sections 5-8). Anything else runs exhaustively.
enum class QueryKind {
  kAggregate,      // FCOUNT/COUNT with an error tolerance (Section 6)
  kCountDistinct,  // COUNT(DISTINCT trackid)
  kScrubbing,      // timestamp selection with class-count HAVING + LIMIT
                   // (Section 7)
  kSelection,      // SELECT * with content predicates (Section 8)
  kBinarySelect,   // NoScope-style timestamp selection with FNR/FPR bounds
  kExhaustive,     // no optimization applies
};

const char* QueryKindName(QueryKind kind);

/// "At least N instances of this class" requirement extracted from a
/// scrubbing query's HAVING clauses.
struct ClassCountRequirement {
  int class_id = kCar;
  int min_count = 1;
};

/// Which of a query's conjuncts the store's per-segment zone-map sketches
/// (storage/segment_sketch.h) can refute. Filled by the analyzer from the
/// query alone — never from store state — so plan descriptions stay
/// identical whether or not an index exists; the executors then consult
/// the index only for the annotated conjuncts.
struct SketchSupport {
  /// HAVING SUM(class=c) >= n conjuncts (scrubbing / exhaustive).
  bool class_counts = false;
  /// WHERE class = c per-detection presence (exhaustive / count-distinct).
  bool class_presence = false;
  /// Spatial ROI over detection centers.
  bool roi = false;
  /// area(mask) lower bound.
  bool min_area = false;
  /// Predicate-free "any detection" full scans.
  bool any_detection = false;

  bool any() const {
    return class_counts || class_presence || roi || min_area || any_detection;
  }
};

/// Semantic summary of a FrameQL query against a specific stream: what the
/// optimizer consumes. Spatial predicates are folded into an ROI,
/// timestamp predicates into a time range, pixel-valued thresholds are
/// normalized using the stream's nominal resolution.
struct AnalyzedQuery {
  QueryKind kind = QueryKind::kExhaustive;
  std::string table;

  // --- aggregation ---
  int agg_class = -1;
  double error = 0.1;
  double confidence = 0.95;
  /// True for COUNT(*) (scaled by frame count); false for FCOUNT(*).
  bool scale_to_total = false;

  // --- scrubbing ---
  std::vector<ClassCountRequirement> requirements;
  int64_t limit = 0;
  int64_t gap = 0;

  // --- selection / exhaustive ---
  /// Class named by the WHERE clause; -1 when the query has none. Carried
  /// for exhaustive plans too, so a full scan still honors the predicate.
  int sel_class = -1;
  /// Content UDF conjuncts (kUdf predicates).
  std::vector<Predicate> udf_predicates;
  /// Minimum pixel area from area(mask) predicates; 0 if absent.
  double min_area_px = 0.0;
  /// ROI folded from spatial predicates; the unit rect if absent.
  Rect roi{0, 0, 1, 1};
  bool has_roi = false;
  /// Minimum track persistence (frames) from HAVING COUNT(*) on trackid.
  int64_t persistence_frames = 0;
  /// Time range in seconds; end < 0 means "to the end". The bounds carry
  /// their comparison ops' inclusivity (timestamp > b vs >= b, < e vs
  /// <= e) so ResolveFrameWindow lands frame-exact boundaries — a frame
  /// stamped exactly `end_sec` belongs to a `<=` range but not a `<` one.
  double begin_sec = 0.0;
  double end_sec = -1.0;
  bool begin_exclusive = false;
  bool end_inclusive = false;

  // --- binary select ---
  double fnr = 0.0;
  double fpr = 0.0;

  /// Sketch-answerable conjuncts of this query (see SketchSupport).
  SketchSupport sketch;

  /// The parsed query this analysis came from.
  FrameQLQuery raw;
};

/// Derives the sketch-answerable conjuncts of a classified query; called
/// by AnalyzeQuery (exposed for tests).
SketchSupport ComputeSketchSupport(const AnalyzedQuery& query);

/// Classifies and validates a parsed query against a stream's schema.
Result<AnalyzedQuery> AnalyzeQuery(const FrameQLQuery& query,
                                   const StreamConfig& stream);

/// Half-open test-day frame window [begin, end) an executor must restrict
/// itself to. The default ({0, -1}) means the whole day; executors resolve
/// end < 0 to the day length.
struct FrameWindow {
  int64_t begin = 0;
  int64_t end = -1;
};

/// Clamps a window to [0, num_frames), resolving the end < 0 sentinel.
/// A window past the end of the day collapses to empty (begin == end).
FrameWindow ClampFrameWindow(FrameWindow window, int64_t num_frames);

/// Resolves the analyzed time range (begin_sec/end_sec at `fps`) to the
/// test-day frame window every executor enforces — the same arithmetic
/// selection's TemporalFilter::SetTimeRange applies, shared so that
/// `timestamp >= …` predicates mean one thing across all plans.
/// InvalidArgument when an explicit end does not exceed the begin.
Result<FrameWindow> ResolveFrameWindow(const AnalyzedQuery& query, int fps,
                                       int64_t num_frames);

}  // namespace blazeit

#endif  // BLAZEIT_FRAMEQL_ANALYZER_H_
