#ifndef BLAZEIT_FRAMEQL_TOKEN_H_
#define BLAZEIT_FRAMEQL_TOKEN_H_

#include <string>

namespace blazeit {

/// Lexical token kinds of FrameQL.
enum class TokenType {
  kIdentifier,  // SELECT, taipei, redness, ... (keywords resolved later)
  kNumber,      // 0.1, 300, 95
  kString,      // 'bus'
  kSymbol,      // ( ) , * = != < <= > >= %
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  /// Raw text (upper-cased for identifiers is done by the parser on
  /// keyword checks; the original case is preserved here).
  std::string text;
  double number = 0.0;
  /// Byte offset in the query string, for error messages.
  size_t position = 0;

  bool IsSymbol(const char* symbol) const {
    return type == TokenType::kSymbol && text == symbol;
  }
  /// Case-insensitive keyword check for identifiers.
  bool IsKeyword(const char* keyword) const;
};

}  // namespace blazeit

#endif  // BLAZEIT_FRAMEQL_TOKEN_H_
