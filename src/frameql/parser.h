#ifndef BLAZEIT_FRAMEQL_PARSER_H_
#define BLAZEIT_FRAMEQL_PARSER_H_

#include <string>

#include "frameql/ast.h"
#include "util/status.h"

namespace blazeit {

/// Parses a FrameQL query string into an AST. Supports the full surface
/// used in the paper (Figures 3a-3c and the Section 4 examples):
///
///   SELECT FCOUNT(*) FROM taipei WHERE class = 'car'
///     ERROR WITHIN 0.1 AT CONFIDENCE 95%
///
///   SELECT timestamp FROM taipei GROUP BY timestamp
///     HAVING SUM(class='bus') >= 1 AND SUM(class='car') >= 5
///     LIMIT 10 GAP 300
///
///   SELECT * FROM taipei
///     WHERE class = 'bus' AND redness(content) >= 0.3
///       AND area(mask) > 50000
///     GROUP BY trackid HAVING COUNT(*) > 15
Result<FrameQLQuery> ParseFrameQL(const std::string& query);

}  // namespace blazeit

#endif  // BLAZEIT_FRAMEQL_PARSER_H_
