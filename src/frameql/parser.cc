#include "frameql/parser.h"

#include <cmath>

#include "frameql/lexer.h"
#include "util/string_util.h"

namespace blazeit {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(double lhs, CmpOp op, double rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

const char* ProjectionName(Projection projection) {
  switch (projection) {
    case Projection::kStar:
      return "*";
    case Projection::kTimestamp:
      return "timestamp";
    case Projection::kFcount:
      return "FCOUNT(*)";
    case Projection::kCountStar:
      return "COUNT(*)";
    case Projection::kCountDistinctTrack:
      return "COUNT(DISTINCT trackid)";
  }
  return "?";
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kClassEq:
      return StrFormat("class = '%s'", str_value.c_str());
    case Kind::kUdf:
      return StrFormat("%s(content) %s %g", name.c_str(), CmpOpName(op),
                       value);
    case Kind::kUdfString:
      return StrFormat("%s(content) = '%s'", name.c_str(),
                       str_value.c_str());
    case Kind::kArea:
      return StrFormat("area(mask) %s %g", CmpOpName(op), value);
    case Kind::kSpatial:
      return StrFormat("%s(mask) %s %g", name.c_str(), CmpOpName(op), value);
    case Kind::kTimestamp:
      return StrFormat("timestamp %s %g", CmpOpName(op), value);
  }
  return "?";
}

std::string HavingClause::ToString() const {
  if (kind == Kind::kClassCount) {
    return StrFormat("SUM(class='%s') %s %g", class_name.c_str(),
                     CmpOpName(op), value);
  }
  return StrFormat("COUNT(*) %s %g", CmpOpName(op), value);
}

std::string FrameQLQuery::ToString() const {
  std::string out =
      StrFormat("SELECT %s FROM %s", ProjectionName(projection),
                table.c_str());
  if (!where.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i) out += " AND ";
      out += where[i].ToString();
    }
  }
  if (!group_by.empty()) out += " GROUP BY " + group_by;
  if (!having.empty()) {
    out += " HAVING ";
    for (size_t i = 0; i < having.size(); ++i) {
      if (i) out += " AND ";
      out += having[i].ToString();
    }
  }
  if (limit) out += StrFormat(" LIMIT %lld", static_cast<long long>(*limit));
  if (gap) out += StrFormat(" GAP %lld", static_cast<long long>(*gap));
  if (error_within) out += StrFormat(" ERROR WITHIN %g", *error_within);
  if (confidence) out += StrFormat(" AT CONFIDENCE %g%%", *confidence * 100);
  if (fnr_within) out += StrFormat(" FNR WITHIN %g", *fnr_within);
  if (fpr_within) out += StrFormat(" FPR WITHIN %g", *fpr_within);
  return out;
}

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<FrameQLQuery> Parse() {
    FrameQLQuery query;
    BLAZEIT_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    BLAZEIT_RETURN_NOT_OK(ParseProjection(&query));
    BLAZEIT_RETURN_NOT_OK(ExpectKeyword("FROM"));
    BLAZEIT_RETURN_NOT_OK(ExpectIdentifier(&query.table));
    BLAZEIT_RETURN_NOT_OK(ParseClauses(&query));
    if (!Peek().IsSymbol(";") && Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return query;
  }

 private:
  const Token& Peek(size_t off = 0) const {
    size_t idx = pos_ + off;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool MatchKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(StrFormat("%s (near offset %zu, token '%s')",
                                        message.c_str(), Peek().position,
                                        Peek().text.c_str()));
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) return Error(StrFormat("expected %s", kw));
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!MatchSymbol(sym)) return Error(StrFormat("expected '%s'", sym));
    return Status::OK();
  }
  Status ExpectIdentifier(std::string* out) {
    if (Peek().type != TokenType::kIdentifier)
      return Error("expected identifier");
    *out = Advance().text;
    return Status::OK();
  }
  Status ExpectNumber(double* out) {
    if (Peek().type != TokenType::kNumber) return Error("expected number");
    *out = Advance().number;
    return Status::OK();
  }
  Status ExpectString(std::string* out) {
    if (Peek().type != TokenType::kString)
      return Error("expected string literal");
    *out = Advance().text;
    return Status::OK();
  }

  Result<CmpOp> ParseCmpOp() {
    const Token& tok = Peek();
    if (tok.type != TokenType::kSymbol)
      return Error("expected comparison operator");
    CmpOp op;
    if (tok.text == "=") {
      op = CmpOp::kEq;
    } else if (tok.text == "!=") {
      op = CmpOp::kNe;
    } else if (tok.text == "<") {
      op = CmpOp::kLt;
    } else if (tok.text == "<=") {
      op = CmpOp::kLe;
    } else if (tok.text == ">") {
      op = CmpOp::kGt;
    } else if (tok.text == ">=") {
      op = CmpOp::kGe;
    } else {
      return Error("expected comparison operator");
    }
    ++pos_;
    return op;
  }

  Status ParseProjection(FrameQLQuery* query) {
    if (MatchSymbol("*")) {
      query->projection = Projection::kStar;
      return Status::OK();
    }
    if (MatchKeyword("FCOUNT")) {
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol("("));
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol("*"));
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol(")"));
      query->projection = Projection::kFcount;
      return Status::OK();
    }
    if (MatchKeyword("COUNT")) {
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol("("));
      if (MatchSymbol("*")) {
        query->projection = Projection::kCountStar;
      } else if (MatchKeyword("DISTINCT")) {
        std::string field;
        BLAZEIT_RETURN_NOT_OK(ExpectIdentifier(&field));
        if (ToLower(field) != "trackid")
          return Error("only COUNT(DISTINCT trackid) is supported");
        query->projection = Projection::kCountDistinctTrack;
      } else {
        return Error("expected * or DISTINCT inside COUNT()");
      }
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol(")"));
      return Status::OK();
    }
    std::string field;
    BLAZEIT_RETURN_NOT_OK(ExpectIdentifier(&field));
    if (ToLower(field) != "timestamp")
      return Error("projection must be *, timestamp, FCOUNT(*) or COUNT");
    query->projection = Projection::kTimestamp;
    return Status::OK();
  }

  Status ParsePredicate(FrameQLQuery* query) {
    Predicate pred;
    std::string name;
    if (Peek().type != TokenType::kIdentifier)
      return Error("expected predicate");
    name = Advance().text;
    std::string lower = ToLower(name);

    if (MatchSymbol("(")) {
      // UDF-style predicate: name(arg) op value.
      std::string arg;
      BLAZEIT_RETURN_NOT_OK(ExpectIdentifier(&arg));
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol(")"));
      std::string arg_lower = ToLower(arg);
      BLAZEIT_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
      pred.op = op;
      if (Peek().type == TokenType::kString) {
        if (pred.op != CmpOp::kEq)
          return Error("string UDF predicates support '=' only");
        pred.kind = Predicate::Kind::kUdfString;
        pred.name = lower;
        BLAZEIT_RETURN_NOT_OK(ExpectString(&pred.str_value));
      } else {
        double value = 0;
        BLAZEIT_RETURN_NOT_OK(ExpectNumber(&value));
        pred.value = value;
        if (arg_lower == "mask") {
          if (lower == "area") {
            pred.kind = Predicate::Kind::kArea;
          } else if (lower == "xmin" || lower == "xmax" || lower == "ymin" ||
                     lower == "ymax") {
            pred.kind = Predicate::Kind::kSpatial;
            pred.name = lower;
          } else {
            return Error(
                StrFormat("unknown mask predicate '%s'", name.c_str()));
          }
        } else if (arg_lower == "content") {
          pred.kind = Predicate::Kind::kUdf;
          pred.name = lower;
        } else {
          return Error(
              StrFormat("UDF argument must be content or mask, got '%s'",
                        arg.c_str()));
        }
      }
    } else if (lower == "class") {
      BLAZEIT_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
      if (op != CmpOp::kEq) return Error("class supports '=' only");
      pred.kind = Predicate::Kind::kClassEq;
      pred.op = op;
      BLAZEIT_RETURN_NOT_OK(ExpectString(&pred.str_value));
    } else if (lower == "timestamp") {
      BLAZEIT_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
      pred.kind = Predicate::Kind::kTimestamp;
      pred.op = op;
      BLAZEIT_RETURN_NOT_OK(ExpectNumber(&pred.value));
    } else {
      return Error(StrFormat("unknown predicate '%s'", name.c_str()));
    }
    query->where.push_back(std::move(pred));
    return Status::OK();
  }

  Status ParseHaving(FrameQLQuery* query) {
    HavingClause clause;
    if (MatchKeyword("SUM")) {
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol("("));
      std::string field;
      BLAZEIT_RETURN_NOT_OK(ExpectIdentifier(&field));
      if (ToLower(field) != "class")
        return Error("HAVING SUM supports class='...' only");
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol("="));
      BLAZEIT_RETURN_NOT_OK(ExpectString(&clause.class_name));
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol(")"));
      clause.kind = HavingClause::Kind::kClassCount;
    } else if (MatchKeyword("COUNT")) {
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol("("));
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol("*"));
      BLAZEIT_RETURN_NOT_OK(ExpectSymbol(")"));
      clause.kind = HavingClause::Kind::kGroupSize;
    } else {
      return Error("expected SUM(...) or COUNT(*) in HAVING");
    }
    BLAZEIT_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
    clause.op = op;
    BLAZEIT_RETURN_NOT_OK(ExpectNumber(&clause.value));
    query->having.push_back(std::move(clause));
    return Status::OK();
  }

  Status ParseClauses(FrameQLQuery* query) {
    while (true) {
      if (MatchKeyword("WHERE")) {
        BLAZEIT_RETURN_NOT_OK(ParsePredicate(query));
        while (MatchKeyword("AND")) {
          BLAZEIT_RETURN_NOT_OK(ParsePredicate(query));
        }
      } else if (MatchKeyword("GROUP")) {
        BLAZEIT_RETURN_NOT_OK(ExpectKeyword("BY"));
        std::string field;
        BLAZEIT_RETURN_NOT_OK(ExpectIdentifier(&field));
        field = ToLower(field);
        if (field != "timestamp" && field != "trackid")
          return Error("GROUP BY supports timestamp or trackid");
        query->group_by = field;
      } else if (MatchKeyword("HAVING")) {
        BLAZEIT_RETURN_NOT_OK(ParseHaving(query));
        while (MatchKeyword("AND")) {
          BLAZEIT_RETURN_NOT_OK(ParseHaving(query));
        }
      } else if (MatchKeyword("LIMIT")) {
        double value = 0;
        BLAZEIT_RETURN_NOT_OK(ExpectNumber(&value));
        query->limit = static_cast<int64_t>(value);
        if (MatchKeyword("GAP")) {
          BLAZEIT_RETURN_NOT_OK(ExpectNumber(&value));
          query->gap = static_cast<int64_t>(value);
        }
      } else if (MatchKeyword("GAP")) {
        double value = 0;
        BLAZEIT_RETURN_NOT_OK(ExpectNumber(&value));
        query->gap = static_cast<int64_t>(value);
      } else if (MatchKeyword("ERROR")) {
        BLAZEIT_RETURN_NOT_OK(ExpectKeyword("WITHIN"));
        double value = 0;
        BLAZEIT_RETURN_NOT_OK(ExpectNumber(&value));
        query->error_within = value;
        // Inline `... ERROR WITHIN 0.1 CONFIDENCE 95%` handled by the loop.
      } else if (MatchKeyword("AT") || Peek().IsKeyword("CONFIDENCE")) {
        BLAZEIT_RETURN_NOT_OK(ExpectKeyword("CONFIDENCE"));
        double value = 0;
        BLAZEIT_RETURN_NOT_OK(ExpectNumber(&value));
        if (MatchSymbol("%")) value /= 100.0;
        if (value > 1.0) value /= 100.0;  // tolerate missing '%'
        query->confidence = value;
      } else if (MatchKeyword("FNR")) {
        BLAZEIT_RETURN_NOT_OK(ExpectKeyword("WITHIN"));
        double value = 0;
        BLAZEIT_RETURN_NOT_OK(ExpectNumber(&value));
        query->fnr_within = value;
      } else if (MatchKeyword("FPR")) {
        BLAZEIT_RETURN_NOT_OK(ExpectKeyword("WITHIN"));
        double value = 0;
        BLAZEIT_RETURN_NOT_OK(ExpectNumber(&value));
        query->fpr_within = value;
      } else {
        return Status::OK();
      }
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<FrameQLQuery> ParseFrameQL(const std::string& query) {
  BLAZEIT_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexFrameQL(query));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace blazeit
