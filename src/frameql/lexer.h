#ifndef BLAZEIT_FRAMEQL_LEXER_H_
#define BLAZEIT_FRAMEQL_LEXER_H_

#include <string>
#include <vector>

#include "frameql/token.h"
#include "util/status.h"

namespace blazeit {

/// Tokenizes a FrameQL query string. The final token is always kEnd.
/// Comments (`-- ...` to end of line) are skipped.
Result<std::vector<Token>> LexFrameQL(const std::string& query);

}  // namespace blazeit

#endif  // BLAZEIT_FRAMEQL_LEXER_H_
