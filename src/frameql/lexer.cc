#include "frameql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace blazeit {

bool Token::IsKeyword(const char* keyword) const {
  return type == TokenType::kIdentifier && ToUpper(text) == keyword;
}

Result<std::vector<Token>> LexFrameQL(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  auto peek = [&](size_t off = 0) -> char {
    return i + off < n ? query[i + off] : '\0';
  };

  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // SQL comment.
    if (c == '-' && peek(1) == '-') {
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(query[i])) ||
                       query[i] == '_' || query[i] == '-')) {
        // Allow '-' inside identifiers for stream names like night-street,
        // but not as a trailing character (so `-- comment` still works).
        if (query[i] == '-' &&
            !(i + 1 < n &&
              (std::isalnum(static_cast<unsigned char>(query[i + 1])) ||
               query[i + 1] == '_'))) {
          break;
        }
        ++i;
      }
      tok.type = TokenType::kIdentifier;
      tok.text = query.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(query[i])) ||
                       query[i] == '.')) {
        ++i;
      }
      tok.type = TokenType::kNumber;
      tok.text = query.substr(start, i - start);
      tok.number = std::strtod(tok.text.c_str(), nullptr);
    } else if (c == '\'') {
      size_t start = ++i;
      while (i < n && query[i] != '\'') ++i;
      if (i >= n) {
        return Status::ParseError(StrFormat(
            "unterminated string literal at offset %zu", tok.position));
      }
      tok.type = TokenType::kString;
      tok.text = query.substr(start, i - start);
      ++i;  // closing quote
    } else {
      tok.type = TokenType::kSymbol;
      // Two-character operators first.
      if ((c == '<' && peek(1) == '=') || (c == '>' && peek(1) == '=') ||
          (c == '!' && peek(1) == '=') || (c == '<' && peek(1) == '>')) {
        tok.text = query.substr(i, 2);
        if (tok.text == "<>") tok.text = "!=";
        i += 2;
      } else if (std::string("()*,=<>%;").find(c) != std::string::npos) {
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError(StrFormat(
            "unexpected character '%c' at offset %zu", c, i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace blazeit
