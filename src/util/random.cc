#include "util/random.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

namespace blazeit {

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

int Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  return std::poisson_distribution<int>(mean)(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::LogNormal(double log_mean, double log_sigma) {
  return std::lognormal_distribution<double>(log_mean, log_sigma)(engine_);
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  std::vector<int64_t> out;
  if (n <= 0) return out;
  if (k >= n) {
    out.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) out[static_cast<size_t>(i)] = i;
    return out;
  }
  // Floyd's algorithm: k draws, O(k) memory.
  std::unordered_set<int64_t> seen;
  seen.reserve(static_cast<size_t>(k));
  for (int64_t j = n - k; j < n; ++j) {
    int64_t t = UniformInt(0, j);
    if (seen.count(t)) t = j;
    seen.insert(t);
    out.push_back(t);
  }
  return out;
}

Rng Rng::Fork(uint64_t salt) const {
  // Copy the engine state hash plus salt; a const_cast-free approach is to
  // hash the salt with a snapshot of the engine via a temporary draw from a
  // copy (the original engine is untouched).
  std::mt19937_64 copy = engine_;
  uint64_t base = copy();
  return Rng(HashCombine(base, salt));
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  // SplitMix64 finalizer over the xor-combination.
  uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Fingerprint& Fingerprint::Mix(uint64_t v) {
  state_ = HashCombine(state_, v);
  return *this;
}

Fingerprint& Fingerprint::Mix(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(bits);
}

Fingerprint& Fingerprint::Mix(float v) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(static_cast<uint64_t>(bits));
}

Fingerprint& Fingerprint::Mix(const std::string& s) {
  return Mix(HashString(s));
}


uint64_t Mt19937_64FirstDraw(uint64_t seed) {
  // std::mt19937_64 parameters (w=64, n=312, m=156, r=31). Seed
  // initialization: mt[0] = seed, mt[i] = f * (mt[i-1] ^ (mt[i-1] >> 62))
  // + i. The first twist step only reads mt[0], mt[1], and mt[m], so run
  // the init recurrence to index m and skip the other 155 words plus the
  // full-state twist.
  constexpr uint64_t kInitMul = 6364136223846793005ULL;
  constexpr uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
  constexpr uint64_t kUpperMask = 0xFFFFFFFF80000000ULL;
  constexpr uint64_t kLowerMask = 0x000000007FFFFFFFULL;
  const uint64_t mt0 = seed;
  uint64_t prev = seed;
  uint64_t mt1 = 0;
  uint64_t mt156 = 0;
  for (uint64_t i = 1; i <= 156; ++i) {
    prev = kInitMul * (prev ^ (prev >> 62)) + i;
    if (i == 1) mt1 = prev;
  }
  mt156 = prev;
  const uint64_t x = (mt0 & kUpperMask) | (mt1 & kLowerMask);
  uint64_t y = mt156 ^ (x >> 1) ^ ((x & 1) ? kMatrixA : 0);
  // Tempering.
  y ^= (y >> 29) & 0x5555555555555555ULL;
  y ^= (y << 17) & 0x71D67FFFEDA60000ULL;
  y ^= (y << 37) & 0xFFF7EEE000000000ULL;
  y ^= y >> 43;
  return y;
}

}  // namespace blazeit
