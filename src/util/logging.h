#ifndef BLAZEIT_UTIL_LOGGING_H_
#define BLAZEIT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace blazeit {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger. Benchmarks set the level to kWarning so harness
/// output stays clean; tests may raise it to kDebug.
///
/// Thread-safe: the level is atomic, the sink pointer and the stderr
/// fallback are guarded by a single mutex, and each BLAZEIT_LOG statement
/// emits one fully formatted line per lock acquisition — concurrent
/// exec-pool workers can log freely with no interleaved lines.
class Logger {
 public:
  /// Receives every message that passes the level filter. Must be
  /// capture-free (a plain function pointer) and thread-safe.
  using Sink = void (*)(LogLevel level, const std::string& message);

  static LogLevel level();
  static void set_level(LogLevel level);
  /// Routes messages to `sink` instead of stderr; nullptr restores stderr.
  static void set_sink(Sink sink);
  static void Log(LogLevel level, const std::string& message);
};

/// Stream-style logging helper: BLAZEIT_LOG(kInfo) << "trained " << n;
///
/// Structured fields: .Field("cid", id) appends logfmt-style ` key=value`
/// pairs after the free-form message, in call order —
///   BLAZEIT_LOG(kInfo).Field("cid", 7) << "plan chosen";
/// renders "plan chosen cid=7". Values containing spaces, quotes, or '='
/// are double-quoted with '"' and '\' escaped, so lines stay one-token-
/// per-field greppable (cid=7 matches exactly one query's lines).
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    std::string line = stream_.str();
    line += fields_;
    Logger::Log(level_, line);
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  LogMessage& Field(const std::string& key, const std::string& value) {
    fields_ += ' ';
    fields_ += key;
    fields_ += '=';
    if (value.find_first_of(" \"=") != std::string::npos) {
      fields_ += '"';
      for (char c : value) {
        if (c == '"' || c == '\\') fields_ += '\\';
        fields_ += c;
      }
      fields_ += '"';
    } else {
      fields_ += value;
    }
    return *this;
  }
  template <typename T>
  LogMessage& Field(const std::string& key, const T& value) {
    std::ostringstream formatted;
    formatted << value;
    return Field(key, formatted.str());
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
  std::string fields_;
};

#define BLAZEIT_LOG(severity) \
  ::blazeit::LogMessage(::blazeit::LogLevel::severity)

}  // namespace blazeit

#endif  // BLAZEIT_UTIL_LOGGING_H_
