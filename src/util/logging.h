#ifndef BLAZEIT_UTIL_LOGGING_H_
#define BLAZEIT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace blazeit {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger. Benchmarks set the level to kWarning so harness
/// output stays clean; tests may raise it to kDebug.
///
/// Thread-safe: the level is atomic, the sink pointer and the stderr
/// fallback are guarded by a single mutex, and each BLAZEIT_LOG statement
/// emits one fully formatted line per lock acquisition — concurrent
/// exec-pool workers can log freely with no interleaved lines.
class Logger {
 public:
  /// Receives every message that passes the level filter. Must be
  /// capture-free (a plain function pointer) and thread-safe.
  using Sink = void (*)(LogLevel level, const std::string& message);

  static LogLevel level();
  static void set_level(LogLevel level);
  /// Routes messages to `sink` instead of stderr; nullptr restores stderr.
  static void set_sink(Sink sink);
  static void Log(LogLevel level, const std::string& message);
};

/// Stream-style logging helper: BLAZEIT_LOG(kInfo) << "trained " << n;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define BLAZEIT_LOG(severity) \
  ::blazeit::LogMessage(::blazeit::LogLevel::severity)

}  // namespace blazeit

#endif  // BLAZEIT_UTIL_LOGGING_H_
