#ifndef BLAZEIT_UTIL_THREAD_ANNOTATIONS_H_
#define BLAZEIT_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros (no-ops on GCC and other
/// compilers), following the abseil/LLVM naming. Annotations turn each
/// hand-rolled mutex protocol — which members a mutex guards, which
/// `*Locked` helpers require it held, which public APIs must not be called
/// with it held — from a comment into a machine-checked contract:
///
///   util::Mutex mu_;
///   int64_t clock_ BLAZEIT_GUARDED_BY(mu_) = 0;
///   void CutWindowLocked() BLAZEIT_REQUIRES(mu_);
///   void Drain() BLAZEIT_EXCLUDES(mu_);
///
/// ci/check.sh compiles the tree with `clang++ -Wthread-safety -Werror`
/// when clang is available (and ci/lint.py textually enforces that every
/// `*Locked` function declares its requirement even when it is not).
///
/// The macros expand to nothing unless the compiler advertises the
/// attributes, so GCC builds — including the ASan/UBSan/TSan lanes — see
/// plain declarations with zero overhead.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define BLAZEIT_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef BLAZEIT_THREAD_ANNOTATION_
#define BLAZEIT_THREAD_ANNOTATION_(x)  // not supported by this compiler
#endif

/// Declares a type to be a capability (util::Mutex is one); `x` names it
/// in diagnostics, e.g. BLAZEIT_CAPABILITY("mutex").
#define BLAZEIT_CAPABILITY(x) BLAZEIT_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (util::MutexLock and friends).
#define BLAZEIT_SCOPED_CAPABILITY BLAZEIT_THREAD_ANNOTATION_(scoped_lockable)

/// Member may only be read or written while holding the given mutex.
#define BLAZEIT_GUARDED_BY(x) BLAZEIT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex (the
/// pointer itself may be read freely).
#define BLAZEIT_PT_GUARDED_BY(x) BLAZEIT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the caller to hold the mutex(es) exclusively. Every
/// `*Locked` helper must carry this (enforced by ci/lint.py).
#define BLAZEIT_REQUIRES(...) \
  BLAZEIT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the caller to hold the mutex(es) at least shared.
#define BLAZEIT_REQUIRES_SHARED(...) \
  BLAZEIT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and returns with them held.
#define BLAZEIT_ACQUIRE(...) \
  BLAZEIT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define BLAZEIT_ACQUIRE_SHARED(...) \
  BLAZEIT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases mutex(es) the caller held on entry.
#define BLAZEIT_RELEASE(...) \
  BLAZEIT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define BLAZEIT_RELEASE_SHARED(...) \
  BLAZEIT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds the capability iff the return
/// value equals the first macro argument.
#define BLAZEIT_TRY_ACQUIRE(...) \
  BLAZEIT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the mutex(es) held (it takes them
/// itself; calling it under them would self-deadlock). The annotation of
/// choice for public APIs of a locking class.
#define BLAZEIT_EXCLUDES(...) \
  BLAZEIT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Assertion that the calling thread already holds the capability; the
/// analysis treats it as held afterwards (util::Mutex::AssertHeld).
#define BLAZEIT_ASSERT_CAPABILITY(x) \
  BLAZEIT_THREAD_ANNOTATION_(assert_capability(x))
#define BLAZEIT_ASSERT_SHARED_CAPABILITY(x) \
  BLAZEIT_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define BLAZEIT_RETURN_CAPABILITY(x) \
  BLAZEIT_THREAD_ANNOTATION_(lock_returned(x))

/// Opts a function out of the analysis entirely — reserve for code whose
/// protocol the analysis cannot express, with a comment saying why.
#define BLAZEIT_NO_THREAD_SAFETY_ANALYSIS \
  BLAZEIT_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // BLAZEIT_UTIL_THREAD_ANNOTATIONS_H_
