#include "util/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace blazeit {

namespace {

bool DetectAvx512() {
  const char* disable = std::getenv("BLAZEIT_DISABLE_SIMD");
  if (disable != nullptr && std::strcmp(disable, "") != 0 &&
      std::strcmp(disable, "0") != 0) {
    return false;
  }
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

}  // namespace

bool CpuHasAvx512() {
  static const bool has = DetectAvx512();
  return has;
}

}  // namespace blazeit
