#include "util/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace blazeit {

namespace {

bool EnvSet(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && std::strcmp(value, "") != 0 &&
         std::strcmp(value, "0") != 0;
}

bool DetectAvx512() {
  if (EnvSet("BLAZEIT_DISABLE_SIMD") || EnvSet("BLAZEIT_DISABLE_AVX512")) {
    return false;
  }
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

bool DetectAvx2() {
  if (EnvSet("BLAZEIT_DISABLE_SIMD")) return false;
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

bool CpuHasAvx512() {
  static const bool has = DetectAvx512();
  return has;
}

bool CpuHasAvx2() {
  static const bool has = DetectAvx2();
  return has;
}

const char* ActiveSimdTierName() {
  if (CpuHasAvx512()) return "avx512";
  if (CpuHasAvx2()) return "avx2";
  return "scalar";
}

}  // namespace blazeit
