#ifndef BLAZEIT_UTIL_MUTEX_H_
#define BLAZEIT_UTIL_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/thread_annotations.h"

/// Annotated mutex wrappers over the std primitives — the only place in
/// src/ allowed to name std::mutex / std::shared_mutex directly (enforced
/// by ci/lint.py). Two contracts ride on the wrappers:
///
///   * compile time: the Clang Thread Safety Analysis capability
///     attributes (thread_annotations.h), so `-Wthread-safety -Werror`
///     verifies GUARDED_BY / REQUIRES / EXCLUDES protocols when clang is
///     available;
///   * run time: debug-build owner tracking, so AssertHeld() /
///     AssertReaderHeld() abort via BLAZEIT_CHECK on *any* compiler when a
///     `*Locked` helper runs without its mutex.
///
/// Owner tracking compiles in when NDEBUG is unset, under ThreadSanitizer,
/// or when BLAZEIT_FORCE_MUTEX_DEBUG is defined (the ASan/UBSan CI lanes
/// set it); release builds carry plain std primitives with zero overhead.
/// Tracking is observe-only — it can abort, never change timing-visible
/// outputs — so the determinism suites are bit-identical with it on.

#if !defined(BLAZEIT_MUTEX_DEBUG)
#if !defined(NDEBUG) || defined(BLAZEIT_FORCE_MUTEX_DEBUG) || \
    defined(__SANITIZE_THREAD__)
#define BLAZEIT_MUTEX_DEBUG 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BLAZEIT_MUTEX_DEBUG 1
#else
#define BLAZEIT_MUTEX_DEBUG 0
#endif
#else
#define BLAZEIT_MUTEX_DEBUG 0
#endif
#endif

namespace blazeit {
namespace util {

/// Annotated exclusive mutex. Prefer the RAII MutexLock over manual
/// Lock/Unlock pairs; `*Locked` helpers document their protocol with
/// BLAZEIT_REQUIRES and verify it at run time with AssertHeld().
class BLAZEIT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BLAZEIT_ACQUIRE() {
    mu_.lock();
    NoteAcquired();
  }

  void Unlock() BLAZEIT_RELEASE() {
    NoteReleased();
    mu_.unlock();
  }

  bool TryLock() BLAZEIT_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    NoteAcquired();
    return true;
  }

  /// Aborts (debug/sanitizer builds) unless the calling thread holds this
  /// mutex; a no-op in release builds. The teeth behind BLAZEIT_REQUIRES
  /// on compilers without the static analysis.
  void AssertHeld() const BLAZEIT_ASSERT_CAPABILITY(this) {
#if BLAZEIT_MUTEX_DEBUG
    BLAZEIT_CHECK(owner_.load(std::memory_order_relaxed) ==
                  std::this_thread::get_id())
        << " — Mutex::AssertHeld: calling thread does not hold the mutex";
#endif
  }

 private:
  friend class CondVar;

  void NoteAcquired() {
#if BLAZEIT_MUTEX_DEBUG
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }
  void NoteReleased() {
#if BLAZEIT_MUTEX_DEBUG
    BLAZEIT_CHECK(owner_.load(std::memory_order_relaxed) ==
                  std::this_thread::get_id())
        << " — Mutex::Unlock by a thread that does not hold the mutex";
    owner_.store(std::thread::id(), std::memory_order_relaxed);
#endif
  }

  std::mutex mu_;
#if BLAZEIT_MUTEX_DEBUG
  std::atomic<std::thread::id> owner_{};
#endif
};

/// Annotated reader/writer mutex (DetectionStore's index lock). Writer
/// ownership is tracked per thread; readers are tracked as a count, so
/// AssertReaderHeld() catches "no lock at all" but cannot attribute a
/// shared hold to a specific thread — the static analysis covers that
/// direction under clang.
class BLAZEIT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() BLAZEIT_ACQUIRE() {
    mu_.lock();
#if BLAZEIT_MUTEX_DEBUG
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  void Unlock() BLAZEIT_RELEASE() {
#if BLAZEIT_MUTEX_DEBUG
    BLAZEIT_CHECK(owner_.load(std::memory_order_relaxed) ==
                  std::this_thread::get_id())
        << " — SharedMutex::Unlock by a thread that does not hold it";
    owner_.store(std::thread::id(), std::memory_order_relaxed);
#endif
    mu_.unlock();
  }

  void LockShared() BLAZEIT_ACQUIRE_SHARED() {
    mu_.lock_shared();
#if BLAZEIT_MUTEX_DEBUG
    readers_.fetch_add(1, std::memory_order_relaxed);
#endif
  }

  void UnlockShared() BLAZEIT_RELEASE_SHARED() {
#if BLAZEIT_MUTEX_DEBUG
    BLAZEIT_CHECK(readers_.fetch_sub(1, std::memory_order_relaxed) > 0)
        << " — SharedMutex::UnlockShared with no shared hold outstanding";
#endif
    mu_.unlock_shared();
  }

  /// Aborts (debug/sanitizer builds) unless the calling thread holds the
  /// mutex exclusively.
  void AssertHeld() const BLAZEIT_ASSERT_CAPABILITY(this) {
#if BLAZEIT_MUTEX_DEBUG
    BLAZEIT_CHECK(owner_.load(std::memory_order_relaxed) ==
                  std::this_thread::get_id())
        << " — SharedMutex::AssertHeld: calling thread does not hold the "
           "mutex exclusively";
#endif
  }

  /// Aborts (debug/sanitizer builds) unless the mutex is held — shared by
  /// some thread, or exclusively by the caller.
  void AssertReaderHeld() const BLAZEIT_ASSERT_SHARED_CAPABILITY(this) {
#if BLAZEIT_MUTEX_DEBUG
    BLAZEIT_CHECK(readers_.load(std::memory_order_relaxed) > 0 ||
                  owner_.load(std::memory_order_relaxed) ==
                      std::this_thread::get_id())
        << " — SharedMutex::AssertReaderHeld: mutex is not held";
#endif
  }

 private:
  std::shared_mutex mu_;
#if BLAZEIT_MUTEX_DEBUG
  std::atomic<std::thread::id> owner_{};
  std::atomic<int> readers_{0};
#endif
};

/// RAII exclusive lock on a Mutex. Unlock()/Lock() support protocols that
/// release early (AdmissionQueue::RunPending executes the cut batch with
/// mu_ released); the destructor releases only if still held.
class BLAZEIT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BLAZEIT_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~MutexLock() BLAZEIT_RELEASE() {
    if (held_) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before end of scope; the destructor then does nothing.
  void Unlock() BLAZEIT_RELEASE() {
    BLAZEIT_CHECK(held_) << " — MutexLock::Unlock while not held";
    mu_->Unlock();
    held_ = false;
  }

  /// Re-acquires after an early Unlock().
  void Lock() BLAZEIT_ACQUIRE() {
    BLAZEIT_CHECK(!held_) << " — MutexLock::Lock while already held";
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_ = true;
};

/// RAII exclusive lock on a SharedMutex (mutating store paths).
class BLAZEIT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) BLAZEIT_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~WriterLock() BLAZEIT_RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared lock on a SharedMutex (read-mostly index lookups).
class BLAZEIT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) BLAZEIT_ACQUIRE_SHARED(mu)
      : mu_(&mu) {
    mu_->LockShared();
  }
  ~ReaderLock() BLAZEIT_RELEASE_SHARED() { mu_->UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable paired with util::Mutex. Wait* atomically releases
/// the mutex and re-acquires it before returning (owner tracking is
/// cleared across the wait and restored on re-acquire, so AssertHeld()
/// holds again after any Wait — covered by tests/mutex_test.cc).
///
/// Caveat: predicates run while the *tracking* says "not held" (the
/// underlying std wait owns the re-acquisitions), so a predicate must not
/// call AssertHeld-checking helpers — keep predicates to plain field
/// reads, which every call site in this repo does.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Caller must hold `mu` (e.g. via an outstanding MutexLock).
  void Wait(Mutex& mu) BLAZEIT_REQUIRES(mu) {
    mu.NoteReleased();
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
    mu.NoteAcquired();
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) BLAZEIT_REQUIRES(mu) {
    mu.NoteReleased();
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
    mu.NoteAcquired();
  }

  /// Returns the predicate's final value (false = timed out still-false).
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) BLAZEIT_REQUIRES(mu) {
    mu.NoteReleased();
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool result = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    mu.NoteAcquired();
    return result;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace blazeit

#endif  // BLAZEIT_UTIL_MUTEX_H_
