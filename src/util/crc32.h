#ifndef BLAZEIT_UTIL_CRC32_H_
#define BLAZEIT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace blazeit {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding the
/// detection-store record format. Table-driven, byte at a time: plenty for
/// the store's I/O rates, with the standard reflected algorithm so values
/// match `cksum`-style tooling.
uint32_t Crc32(const void* data, size_t size);

/// Incremental form: feed `Crc32Update` successive chunks starting from
/// `kCrc32Init`, then finalize. `Crc32(p, n)` ==
/// `Crc32Finalize(Crc32Update(kCrc32Init, p, n))`.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t state, const void* data, size_t size);
inline uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace blazeit

#endif  // BLAZEIT_UTIL_CRC32_H_
