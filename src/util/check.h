#ifndef BLAZEIT_UTIL_CHECK_H_
#define BLAZEIT_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace blazeit {

/// Terminates the process after streaming a diagnostic; the failure side
/// of BLAZEIT_CHECK. Unlike assert(), the check stays active under NDEBUG
/// — it guards invariants (e.g. MatMul shape agreement) whose violation
/// would otherwise become silent out-of-bounds reads in Release builds.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

 private:
  std::ostringstream stream_;
};

/// Always-on invariant check with stream-style context:
///   BLAZEIT_CHECK(a.cols() == b.rows()) << " got " << a.cols();
/// Aborts (after printing file:line, the condition, and the streamed
/// message) when the condition is false, in every build type.
#define BLAZEIT_CHECK(condition)         \
  if (condition) {                       \
  } else                                 \
    ::blazeit::CheckFailure(__FILE__, __LINE__, #condition)

/// Debug-only invariant check for hot paths (per-element indexing, inner
/// loops) where an always-on branch would be measurable. Compiles to
/// nothing under NDEBUG; otherwise identical to BLAZEIT_CHECK. Prefer
/// BLAZEIT_CHECK everywhere the cost is amortized (per call, per batch).
#ifdef NDEBUG
#define BLAZEIT_DCHECK(condition)        \
  if (true || (condition)) {             \
  } else                                 \
    ::blazeit::CheckFailure(__FILE__, __LINE__, #condition)
#else
#define BLAZEIT_DCHECK(condition) BLAZEIT_CHECK(condition)
#endif

}  // namespace blazeit

#endif  // BLAZEIT_UTIL_CHECK_H_
