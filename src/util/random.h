#ifndef BLAZEIT_UTIL_RANDOM_H_
#define BLAZEIT_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace blazeit {

/// Seeded pseudo-random generator used everywhere in the library so that
/// scene generation, detector noise, NN initialization, and sampling are all
/// reproducible. Wraps std::mt19937_64 with the distributions we need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Standard normal draw scaled to N(mean, stddev^2).
  double Normal(double mean, double stddev);
  /// Poisson draw with the given mean.
  int Poisson(double mean);
  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);
  /// Log-normal draw parameterized by the *target* mean and sigma of the
  /// underlying normal; used for object dwell-time distributions.
  double LogNormal(double log_mean, double log_sigma);

  /// Samples `k` distinct indices uniformly from [0, n) (Floyd's algorithm);
  /// if k >= n returns the full range.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Deterministically derives an independent child generator; used to give
  /// each frame/object its own stream so frame access order is irrelevant.
  Rng Fork(uint64_t salt) const;

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 hash; used to derive per-frame deterministic seeds.
uint64_t HashCombine(uint64_t a, uint64_t b);

/// The first output of std::mt19937_64 seeded with `seed`, computed
/// without materializing the engine's 312-word state (~40x cheaper than
/// constructing an Rng for one draw — the first output only depends on
/// state words 0, 1, and 156 of the standard-specified seeding
/// recurrence). The renderer burns one engine draw per frame to seed the
/// pixel-noise stream; this keeps that contract bit-identical while
/// removing the engine construction from the per-frame hot path. Pinned
/// against std::mt19937_64 itself in util_test.
uint64_t Mt19937_64FirstDraw(uint64_t seed);

/// FNV-1a hash of a string; used to derive per-stream (not per-day)
/// deterministic parameters such as diurnal phases.
uint64_t HashString(const std::string& s);

/// Order-sensitive hash accumulator for building content fingerprints of
/// configuration structs (stream configs, detector noise, NN shapes).
/// Floating-point values are mixed by bit pattern, so fingerprints change
/// exactly when the serialized value would. Stable across processes — the
/// detection store persists these on disk as cache keys.
class Fingerprint {
 public:
  Fingerprint& Mix(uint64_t v);
  Fingerprint& Mix(int64_t v) { return Mix(static_cast<uint64_t>(v)); }
  Fingerprint& Mix(int v) { return Mix(static_cast<uint64_t>(v)); }
  Fingerprint& Mix(bool v) { return Mix(static_cast<uint64_t>(v)); }
  Fingerprint& Mix(double v);
  Fingerprint& Mix(float v);
  Fingerprint& Mix(const std::string& s);
  /// Without this overload a string literal would take the built-in
  /// pointer-to-bool conversion and every literal would hash as `true`.
  Fingerprint& Mix(const char* s) { return Mix(std::string(s)); }
  template <typename T>
  Fingerprint& MixRange(const std::vector<T>& values) {
    Mix(static_cast<uint64_t>(values.size()));
    for (const T& v : values) Mix(v);
    return *this;
  }

  uint64_t value() const { return state_; }

 private:
  uint64_t state_ = 0x9E3779B97F4A7C15ull;
};

}  // namespace blazeit

#endif  // BLAZEIT_UTIL_RANDOM_H_
