#ifndef BLAZEIT_UTIL_ARTIFACT_CACHE_H_
#define BLAZEIT_UTIL_ARTIFACT_CACHE_H_

#include <cstdint>
#include <vector>

namespace blazeit {

/// Version epoch of the *code* that derives cached artifacts. Config
/// fingerprints capture what the inputs were, but not which implementation
/// of the detector noise model, renderer, FrameFeatures, or NN forward
/// math produced the bytes — persistent stores mix this epoch into every
/// namespace, so bumping it invalidates all derived artifacts at once.
/// Bump whenever any of that math changes output bits.
///
/// Epoch history:
///   2 — PR 3: renderer contract fix (lighting factor clamped to >= 0,
///       fill-site color clamp to [0,1]) and the two-pass Resize box
///       filter. The vectorized raster/NN kernels themselves are
///       bit-identical to the scalar paths and did not require a bump.
inline constexpr uint64_t kDerivedArtifactEpoch = 2;

/// Cache interface for expensive derived per-frame artifacts: trained NN
/// weights, per-frame NN softmax outputs, and per-frame filter scores. The
/// interface lives in util/ so nn/ and filters/ stay independent of the
/// storage backend; the DetectionStore-backed implementation is
/// storage/store_artifact_cache.h, and a null cache (the default
/// everywhere) disables persistence entirely.
///
/// Keys are caller-computed fingerprints covering everything the cached
/// value depends on (training day, labels, config, evaluation day, filter
/// identity); a key therefore never needs invalidation — a changed input
/// is a different key. Values are bit-exact: a cache hit must reproduce
/// the identical floats/doubles the computation would have produced, so
/// query outputs and simulated costs are unchanged warm or cold.
class ArtifactCache {
 public:
  virtual ~ArtifactCache() = default;

  /// Per-frame float records under namespace `ns`. Returns false on miss.
  virtual bool GetFrameFloats(uint64_t ns, int64_t frame,
                              std::vector<float>* out) = 0;
  virtual void PutFrameFloats(uint64_t ns, int64_t frame,
                              const std::vector<float>& values) = 0;

  /// Per-frame double records (filter scores are doubles; storing them as
  /// floats would round and could flip threshold comparisons).
  virtual bool GetFrameDoubles(uint64_t ns, int64_t frame,
                               std::vector<double>* out) = 0;
  virtual void PutFrameDoubles(uint64_t ns, int64_t frame,
                               const std::vector<double>& values) = 0;

  /// One blob per namespace (trained weights). Returns false on miss.
  virtual bool GetBlob(uint64_t ns, std::vector<float>* out) = 0;
  virtual void PutBlob(uint64_t ns, const std::vector<float>& values) = 0;
};

}  // namespace blazeit

#endif  // BLAZEIT_UTIL_ARTIFACT_CACHE_H_
