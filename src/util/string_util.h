#ifndef BLAZEIT_UTIL_STRING_UTIL_H_
#define BLAZEIT_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace blazeit {

/// Lower-cases ASCII characters; FrameQL keywords are case-insensitive.
std::string ToLower(const std::string& s);

/// Upper-cases ASCII characters.
std::string ToUpper(const std::string& s);

/// Strips leading and trailing whitespace.
std::string Trim(const std::string& s);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins strings with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace blazeit

#endif  // BLAZEIT_UTIL_STRING_UTIL_H_
