#ifndef BLAZEIT_UTIL_CPU_FEATURES_H_
#define BLAZEIT_UTIL_CPU_FEATURES_H_

namespace blazeit {

/// Runtime ISA tiers of the hot-path kernels. The kernels in
/// video/raster_kernels.* and nn/matmul_kernels.* dispatch AVX-512 →
/// AVX2 → scalar at runtime, so the library binary stays baseline x86-64
/// portable while using the widest vectors available. Every SIMD tier is
/// bit-identical to the scalar fallback by construction (element-wise
/// lanes, no FMA contraction, no reassociation), so dispatch never
/// changes query outputs — only wall clock.
///
/// Environment overrides (each checked once, at first call; used by tests
/// to exercise every dispatch arm on one machine):
///   BLAZEIT_DISABLE_SIMD=1    force the scalar paths everywhere
///   BLAZEIT_DISABLE_AVX512=1  cap dispatch at the AVX2 tier

/// True if the CPU supports the AVX-512 subset used by the kernels
/// (F + DQ: 512-bit float math, 64-bit integer multiplies, gathers).
bool CpuHasAvx512();

/// True if the CPU supports AVX2 (256-bit integer ops and gathers; the
/// mid tier between AVX-512 and scalar).
bool CpuHasAvx2();

/// Name of the widest tier dispatch will pick: "avx512", "avx2", or
/// "scalar". Stable for the process lifetime (detection and overrides are
/// latched at first call); used as a metric label for kernel accounting.
const char* ActiveSimdTierName();

}  // namespace blazeit

#endif  // BLAZEIT_UTIL_CPU_FEATURES_H_
