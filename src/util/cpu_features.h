#ifndef BLAZEIT_UTIL_CPU_FEATURES_H_
#define BLAZEIT_UTIL_CPU_FEATURES_H_

namespace blazeit {

/// True if the CPU supports the AVX-512 subset used by the hot-path
/// kernels (F + DQ: 512-bit float math, 64-bit integer multiplies,
/// gathers). The kernels in video/raster_kernels.* and nn/matmul_kernels.*
/// dispatch on this at runtime, so the library binary stays baseline
/// x86-64 portable while using wide vectors where available. The SIMD
/// paths are bit-identical to their scalar fallbacks by construction
/// (element-wise lanes, no FMA contraction, no reassociation), so dispatch
/// never changes query outputs — only wall clock.
///
/// Set BLAZEIT_DISABLE_SIMD=1 in the environment to force the scalar
/// paths (checked once, at first call); used by tests to exercise both
/// sides of the dispatch.
bool CpuHasAvx512();

}  // namespace blazeit

#endif  // BLAZEIT_UTIL_CPU_FEATURES_H_
