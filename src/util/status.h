#ifndef BLAZEIT_UTIL_STATUS_H_
#define BLAZEIT_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace blazeit {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kParseError,
  kInternal,
  /// A bounded resource (admission queue capacity, per-client quota) is
  /// spent; the request was refused, not queued. Retry after draining.
  kResourceExhausted,
  /// The caller withdrew the operation (AdmissionQueue::Cancel) before it
  /// ran; no work was performed on its behalf.
  kCancelled,
};

/// A Status holds the outcome of an operation: either OK or an error code
/// with a human-readable message. Library code never throws; every fallible
/// public entry point returns a Status or a Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: epsilon must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value or an error Status (Arrow's arrow::Result
/// idiom). Access to the value of an error result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value, so `return value;` works.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    BLAZEIT_CHECK(!status_.ok())
        << " Result constructed from OK status without value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    BLAZEIT_CHECK(ok()) << " value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    BLAZEIT_CHECK(ok()) << " value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    BLAZEIT_CHECK(ok()) << " value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates errors to the caller, RocksDB-style.
#define BLAZEIT_RETURN_NOT_OK(expr)             \
  do {                                          \
    ::blazeit::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result expression; on error returns its status, otherwise
/// moves the value into `lhs`.
#define BLAZEIT_ASSIGN_OR_RETURN(lhs, expr)     \
  auto BLAZEIT_CONCAT_(_res, __LINE__) = (expr);                    \
  if (!BLAZEIT_CONCAT_(_res, __LINE__).ok())                        \
    return BLAZEIT_CONCAT_(_res, __LINE__).status();                \
  lhs = std::move(BLAZEIT_CONCAT_(_res, __LINE__)).value()

#define BLAZEIT_CONCAT_IMPL_(a, b) a##b
#define BLAZEIT_CONCAT_(a, b) BLAZEIT_CONCAT_IMPL_(a, b)

}  // namespace blazeit

#endif  // BLAZEIT_UTIL_STATUS_H_
