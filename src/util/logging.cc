#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/mutex.h"

namespace blazeit {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
/// Single sink/stderr mutex: one fully formatted line is emitted per
/// acquisition, so concurrent exec-pool workers never interleave output.
util::Mutex g_mutex;
Logger::Sink g_sink BLAZEIT_GUARDED_BY(g_mutex) = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::set_sink(Sink sink) {
  util::MutexLock lock(g_mutex);
  g_sink = sink;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  Sink sink;
  {
    util::MutexLock lock(g_mutex);
    sink = g_sink;
  }
  // Invoke outside the lock so a sink that logs does not self-deadlock.
  if (sink != nullptr) {
    sink(level, message);
    return;
  }
  util::MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace blazeit
