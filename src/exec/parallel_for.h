#ifndef BLAZEIT_EXEC_PARALLEL_FOR_H_
#define BLAZEIT_EXEC_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/thread_pool.h"

namespace blazeit {
namespace exec {

/// Deterministic data-parallel loops over index ranges.
///
/// The design rule that makes every parallel query path bit-identical to
/// serial execution: the range [0, total) is split into *fixed-size*
/// shards whose boundaries depend only on (total, shard_size) — never on
/// the thread count — and results are either written to disjoint
/// per-index slots or merged in ascending shard order. Within a shard,
/// execution is the plain serial loop. So for any thread count (including
/// the pool-disabled serial path) every float is computed by the same
/// expression over the same operands in the same order.

/// Default shard size for per-frame work. Large enough that shard
/// bookkeeping amortizes to noise, small enough to load-balance a few
/// hundred frames across many cores.
inline constexpr int64_t kDefaultShardSize = 256;

/// Number of fixed-size shards covering [0, total).
inline int64_t NumShards(int64_t total, int64_t shard_size) {
  return shard_size <= 0 ? 0 : (total + shard_size - 1) / shard_size;
}

/// Calls fn(begin, end, slot) for each shard [begin, end) of [0, total),
/// in parallel on the global pool. `slot` (in [0, max_parallelism)) is
/// stable for the duration of one shard — index per-worker scratch with
/// it. fn must confine writes to per-index or per-shard locations.
void ParallelFor(int64_t total, int64_t shard_size,
                 const std::function<void(int64_t begin, int64_t end,
                                          int slot)>& fn);

/// As ParallelFor with the default shard size.
void ParallelFor(int64_t total,
                 const std::function<void(int64_t begin, int64_t end,
                                          int slot)>& fn);

/// Maps each shard to a value and returns the values in ascending shard
/// order — the deterministic input to a serial fold. The per-shard
/// computation runs in parallel; the returned vector's order never
/// depends on thread count or completion order.
template <typename T>
std::vector<T> ParallelMap(
    int64_t total, int64_t shard_size,
    const std::function<T(int64_t begin, int64_t end, int slot)>& fn) {
  const int64_t shards = NumShards(total, shard_size);
  std::vector<T> results(static_cast<size_t>(shards));
  ThreadPool::Instance().RunShards(shards, [&](int64_t shard, int slot) {
    const int64_t begin = shard * shard_size;
    const int64_t end = begin + shard_size < total ? begin + shard_size : total;
    results[static_cast<size_t>(shard)] = fn(begin, end, slot);
  });
  return results;
}

}  // namespace exec
}  // namespace blazeit

#endif  // BLAZEIT_EXEC_PARALLEL_FOR_H_
