#ifndef BLAZEIT_EXEC_THREAD_POOL_H_
#define BLAZEIT_EXEC_THREAD_POOL_H_

#include <cstdint>
#include <functional>

namespace blazeit {
namespace exec {

/// The process-wide worker pool behind ParallelFor / FramePipeline. One
/// singleton serves every query path (NN inference and training GEMMs,
/// filter scoring, frame scans), so total CPU use stays bounded no matter
/// how many executors are live.
///
/// Sizing: BLAZEIT_THREADS in the environment sets the total parallelism
/// (the calling thread participates, so N means the caller plus N-1
/// workers); unset or empty means hardware_concurrency; "1" or "0"
/// disables the pool entirely — every RunShards call then executes inline
/// on the caller, byte-for-byte the serial program.
///
/// Determinism contract: the pool only distributes *shards* (see
/// parallel_for.h). Which thread runs a shard, and in what order shards
/// complete, is scheduling noise — callers must write results into
/// per-shard slots (merged in shard-index order) or disjoint per-index
/// locations, and must keep any cross-shard reduction a fixed-order serial
/// chain. Every consumer in this repo follows that rule, which is why
/// query outputs are bit-identical at any thread count (asserted by
/// tests/parallel_determinism_test.cc).
class ThreadPool {
 public:
  /// Sub-pool budget classes (Polynesia-style isolation): jobs are tagged
  /// with the kind of work they carry so worker help can be capped per
  /// class — a long analytics run (batch NN training) then cannot occupy
  /// every worker and starve latency-sensitive serving jobs. The caller
  /// always executes its own job regardless of budgets (slot 0), so a
  /// class is never starved below one lane and budgets can only change
  /// scheduling, never outputs.
  enum class Budget {
    kDefault = 0,
    /// Latency-sensitive work admitted by serve::AdmissionQueue.
    kServing,
    /// Throughput-oriented work: ExecuteBatch, training sweeps, ingest.
    kAnalytics,
  };
  static constexpr int kNumBudgets = 3;

  /// The singleton, created on first use with the BLAZEIT_THREADS sizing.
  static ThreadPool& Instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: workers + the participating caller; >= 1. This is
  /// also the number of scratch slots a caller must provision (slot ids
  /// passed to shard functions are in [0, max_parallelism())).
  int max_parallelism() const;

  /// True when worker threads exist (max_parallelism() > 1).
  bool enabled() const { return max_parallelism() > 1; }

  /// Resizes the pool to a total parallelism of `threads` (clamped to
  /// >= 1; 1 means no workers, fully serial). Joins existing workers
  /// first, so it must not race with RunShards — tests and benches call it
  /// between runs to sweep thread counts; servers configure once via the
  /// environment.
  void Reconfigure(int threads);

  /// Runs fn(shard, slot) for every shard in [0, num_shards), distributing
  /// shards dynamically over the workers and the calling thread, and
  /// blocks until all shards finish. `slot` identifies the executing
  /// lane in [0, max_parallelism()) for per-worker scratch reuse; slot 0
  /// is always the calling thread.
  ///
  /// Exceptions: if shard functions throw, the exception from the
  /// lowest-numbered throwing shard is rethrown on the caller (the same
  /// exception serial execution would surface first); remaining unclaimed
  /// shards are abandoned.
  ///
  /// Nested use: calling RunShards from inside a shard function runs the
  /// inner shards inline on the current thread (serially, in shard order)
  /// rather than deadlocking on the already-busy pool.
  void RunShards(int64_t num_shards,
                 const std::function<void(int64_t shard, int slot)>& fn);

  /// As above, with the job tagged for `budget`'s worker cap. The default
  /// overload runs under Budget::kDefault (unlimited unless capped).
  void RunShards(int64_t num_shards,
                 const std::function<void(int64_t shard, int slot)>& fn,
                 Budget budget);

  /// Caps how many pool *workers* may concurrently help jobs tagged with
  /// `budget` (<= 0 restores unlimited, the default). The submitting
  /// caller is never counted against the cap, so every job keeps at least
  /// one lane of progress. Scheduling-only: shard outputs are written to
  /// per-shard slots, so budgets cannot change result bits.
  void SetBudgetLimit(Budget budget, int max_workers);
  int BudgetLimit(Budget budget) const;

  /// Parallelism requested by the environment (BLAZEIT_THREADS, falling
  /// back to hardware_concurrency). Exposed for tests of the knob parsing.
  static int ThreadsFromEnv();

 private:
  struct Job;

  ThreadPool();

  void WorkerLoop(int slot);
  /// Claims and runs shards of `job` until none remain.
  static void WorkOn(Job* job, int slot);

  struct Impl;
  Impl* impl_;  // owned; keeps <thread>/<mutex> out of this header
};

}  // namespace exec
}  // namespace blazeit

#endif  // BLAZEIT_EXEC_THREAD_POOL_H_
