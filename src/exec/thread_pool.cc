#include "exec/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace blazeit {
namespace exec {

namespace {

/// Set while the current thread is executing a shard; nested RunShards
/// calls detect it and run inline instead of waiting on the pool they are
/// themselves occupying.
thread_local bool t_inside_shard = false;

}  // namespace

/// One RunShards invocation: a bag of shards claimed off an atomic
/// counter. Several jobs can be live at once (two user threads issuing
/// parallel sections); workers drain them FIFO.
struct ThreadPool::Job {
  int64_t num_shards = 0;
  const std::function<void(int64_t, int)>* fn = nullptr;
  /// Worker-cap class this job is charged against (see Budget).
  Budget budget = Budget::kDefault;
  /// Next shard to claim; claims past num_shards mean the job is drained.
  std::atomic<int64_t> next{0};
  /// Shards finished (or abandoned); the job completes at num_shards.
  std::atomic<int64_t> done{0};
  /// Workers currently inside WorkOn. The caller frees the job only once
  /// this drops to zero, so a worker's trailing "any shards left?" claim
  /// can never touch freed memory.
  std::atomic<int> active_workers{0};
  /// Set on the first throw so unclaimed shards are skipped.
  std::atomic<bool> cancelled{false};

  util::Mutex mu;
  util::CondVar all_done;
  /// Lowest-shard-index exception, matching what serial execution would
  /// surface first regardless of completion order.
  std::exception_ptr exception BLAZEIT_GUARDED_BY(mu);
  int64_t exception_shard BLAZEIT_GUARDED_BY(mu) = -1;
};

struct ThreadPool::Impl {
  util::Mutex mu;
  util::CondVar work_available;
  std::deque<Job*> queue BLAZEIT_GUARDED_BY(mu);
  /// Touched only by Reconfigure (documented not to race with RunShards)
  /// and the const sizing accessors, so deliberately not guarded.
  std::vector<std::thread> workers;
  bool shutting_down BLAZEIT_GUARDED_BY(mu) = false;
  /// Per-budget worker caps (<= 0 = unlimited) and how many workers are
  /// currently attached to jobs of each class.
  int budget_limit[kNumBudgets] BLAZEIT_GUARDED_BY(mu) = {0, 0, 0};
  int budget_active[kNumBudgets] BLAZEIT_GUARDED_BY(mu) = {0, 0, 0};

  /// Next runnable job under the budget caps; erases drained jobs
  /// encountered during the scan.
  Job* PickJobLocked() BLAZEIT_REQUIRES(mu);
};

ThreadPool& ThreadPool::Instance() {
  static ThreadPool* pool = new ThreadPool();  // leaked: outlives all users
  return *pool;
}

int ThreadPool::ThreadsFromEnv() {
  const char* env = std::getenv("BLAZEIT_THREADS");
  if (env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed < 1 ? 1 : static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool() : impl_(new Impl()) {
  Reconfigure(ThreadsFromEnv());
}

ThreadPool::~ThreadPool() {
  Reconfigure(1);
  delete impl_;
}

int ThreadPool::max_parallelism() const {
  return static_cast<int>(impl_->workers.size()) + 1;
}

void ThreadPool::Reconfigure(int threads) {
  if (threads < 1) threads = 1;
  {
    util::MutexLock lock(impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->work_available.NotifyAll();
  for (std::thread& worker : impl_->workers) worker.join();
  impl_->workers.clear();
  {
    util::MutexLock lock(impl_->mu);
    impl_->shutting_down = false;
  }
  for (int slot = 1; slot < threads; ++slot) {
    impl_->workers.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

ThreadPool::Job* ThreadPool::Impl::PickJobLocked() {
  for (auto it = queue.begin(); it != queue.end();) {
    Job* job = *it;
    if (job->next.load(std::memory_order_relaxed) >= job->num_shards) {
      // Drained: every shard is claimed (though maybe still running).
      // Drop it so later scans skip it; the owner's unlink tolerates the
      // job already being gone from the queue.
      it = queue.erase(it);
      continue;
    }
    const int b = static_cast<int>(job->budget);
    if (budget_limit[b] > 0 && budget_active[b] >= budget_limit[b]) {
      ++it;  // class at its worker cap; look for other-class work
      continue;
    }
    return job;
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(int slot) {
  for (;;) {
    Job* job = nullptr;
    int budget_idx = 0;
    {
      util::MutexLock lock(impl_->mu);
      impl_->work_available.Wait(
          impl_->mu, [this, &job]() BLAZEIT_NO_THREAD_SAFETY_ANALYSIS {
            if (impl_->shutting_down) return true;
            job = impl_->PickJobLocked();
            return job != nullptr;
          });
      if (impl_->shutting_down) return;
      // Registered under the queue lock: the owner unlinks the job under
      // this same lock before freeing it, so attach-or-miss is atomic.
      // The budget charge rides the same lock so caps are never oversubscribed.
      budget_idx = static_cast<int>(job->budget);
      ++impl_->budget_active[budget_idx];
      job->active_workers.fetch_add(1, std::memory_order_relaxed);
    }
    WorkOn(job, slot);
    {
      // Release the budget slot and wake workers parked on a capped
      // class before detaching from the job (the two waits are separate
      // condition variables).
      util::MutexLock lock(impl_->mu);
      --impl_->budget_active[budget_idx];
    }
    impl_->work_available.NotifyAll();
    {
      // Detach *under the job mutex* and notify before releasing it: the
      // owner's wait predicate requires active_workers == 0, so if the
      // decrement happened unlocked, a spurious wakeup in the window
      // between decrement and notify could observe completion, return
      // from RunShards, and destroy the stack-allocated Job while this
      // thread still needs its mutex.
      util::MutexLock lock(job->mu);
      job->active_workers.fetch_sub(1, std::memory_order_acq_rel);
      job->all_done.NotifyAll();
    }
  }
}

void ThreadPool::WorkOn(Job* job, int slot) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* caller_shards = registry.GetCounter(
      "exec.shards{where=caller}", obs::Stability::kUnstable);
  static obs::Counter* worker_shards = registry.GetCounter(
      "exec.shards{where=worker}", obs::Stability::kUnstable);
  for (;;) {
    const int64_t shard = job->next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= job->num_shards) return;
    if (!job->cancelled.load(std::memory_order_relaxed)) {
      (slot == 0 ? caller_shards : worker_shards)->Add();
      t_inside_shard = true;
      try {
        (*job->fn)(shard, slot);
      } catch (...) {
        job->cancelled.store(true, std::memory_order_relaxed);
        util::MutexLock lock(job->mu);
        if (job->exception_shard < 0 || shard < job->exception_shard) {
          job->exception = std::current_exception();
          job->exception_shard = shard;
        }
      }
      t_inside_shard = false;
    }
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->num_shards) {
      util::MutexLock lock(job->mu);
      job->all_done.NotifyAll();
    }
  }
}

void ThreadPool::SetBudgetLimit(Budget budget, int max_workers) {
  {
    util::MutexLock lock(impl_->mu);
    impl_->budget_limit[static_cast<int>(budget)] =
        max_workers < 0 ? 0 : max_workers;
  }
  // Raising (or clearing) a cap can make parked work runnable.
  impl_->work_available.NotifyAll();
}

int ThreadPool::BudgetLimit(Budget budget) const {
  util::MutexLock lock(impl_->mu);
  return impl_->budget_limit[static_cast<int>(budget)];
}

void ThreadPool::RunShards(
    int64_t num_shards, const std::function<void(int64_t shard, int slot)>& fn) {
  RunShards(num_shards, fn, Budget::kDefault);
}

void ThreadPool::RunShards(
    int64_t num_shards, const std::function<void(int64_t shard, int slot)>& fn,
    Budget budget) {
  if (num_shards <= 0) return;

  // Call and shard counts are deterministic functions of the work (shard
  // geometry is fixed-size and sharding decisions depend only on problem
  // sizes), hence kStable; *where* each shard runs — inline, on the
  // caller, or on a worker — and the queue depth are scheduling artifacts,
  // hence kUnstable.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* run_calls =
      registry.GetCounter("exec.run_calls", obs::Stability::kStable);
  static obs::Counter* shards_total =
      registry.GetCounter("exec.shards_total", obs::Stability::kStable);
  static obs::Histogram* shards_per_run = registry.GetHistogram(
      "exec.shards_per_run", {1, 2, 4, 8, 16, 32, 64, 128},
      obs::Stability::kStable);
  run_calls->Add();
  shards_total->Add(num_shards);
  shards_per_run->Observe(num_shards);

  // Serial paths: pool disabled, a single shard, or a nested call from
  // inside a shard (the pool is busy running *us*; queueing would
  // deadlock when every worker waits on its own sub-job). Inline
  // execution in ascending shard order is exactly the serial program.
  if (!enabled() || num_shards == 1 || t_inside_shard) {
    static obs::Counter* inline_shards =
        registry.GetCounter("exec.shards{where=inline}",
                            obs::Stability::kUnstable);
    inline_shards->Add(num_shards);
    for (int64_t shard = 0; shard < num_shards; ++shard) {
      fn(shard, 0);
    }
    return;
  }

  Job job;
  job.num_shards = num_shards;
  job.fn = &fn;
  job.budget = budget;
  {
    util::MutexLock lock(impl_->mu);
    impl_->queue.push_back(&job);
    static obs::Gauge* queue_depth =
        registry.GetGauge("exec.queue_depth", obs::Stability::kUnstable);
    queue_depth->Set(static_cast<int64_t>(impl_->queue.size()));
  }
  impl_->work_available.NotifyAll();

  // The caller is slot 0 and works too: no idle thread, and a saturated
  // pool degrades to caller-does-everything rather than stalling.
  WorkOn(&job, 0);

  {
    // Unlink so no further worker can attach; registered workers hold
    // active_workers and are drained below before `job` leaves scope.
    util::MutexLock lock(impl_->mu);
    for (auto it = impl_->queue.begin(); it != impl_->queue.end(); ++it) {
      if (*it == &job) {
        impl_->queue.erase(it);
        break;
      }
    }
  }
  {
    util::MutexLock lock(job.mu);
    job.all_done.Wait(job.mu, [&job] {
      return job.done.load(std::memory_order_acquire) == job.num_shards &&
             job.active_workers.load(std::memory_order_acquire) == 0;
    });
  }
  if (job.exception) std::rethrow_exception(job.exception);
}

}  // namespace exec
}  // namespace blazeit
