#ifndef BLAZEIT_EXEC_FRAME_PIPELINE_H_
#define BLAZEIT_EXEC_FRAME_PIPELINE_H_

#include <cstdint>
#include <functional>

#include "nn/tensor.h"
#include "video/image.h"

namespace blazeit {
namespace exec {

/// Sharded execution of per-frame pipelines (render → feature → NN →
/// detector → filter) with per-worker scratch.
///
/// PR 3's single-thread hot path reuses one scratch Image across a whole
/// batch loop (RenderFrameRegionInto / RenderFrameFeatures) so rendering
/// never allocates per frame. FramePipeline carries that pattern across
/// cores: each worker slot owns one Scratch, reused for every shard that
/// slot executes, so a parallel sweep does O(threads) allocations instead
/// of O(frames) — and zero when the pool is disabled and the caller's
/// slot-0 scratch persists across Run calls.
///
/// Determinism: shards are fixed-size index ranges of the caller's frame
/// list (boundaries independent of thread count; see parallel_for.h), the
/// scratch is fully overwritten per frame by the render kernels, and
/// stage functions write only to per-index output slots. Under those
/// rules a pipeline's output is bit-identical at any thread count.
class FramePipeline {
 public:
  /// Per-worker reusable buffers: a render target for
  /// RenderFrameRegionInto / RenderFrameFeatures and a Matrix for NN
  /// input batches. Both grow to the high-water mark of the shards their
  /// slot executes and are fully overwritten before each use.
  struct Scratch {
    Image image;
    Matrix matrix;
  };

  using ShardFn =
      std::function<void(int64_t begin, int64_t end, Scratch* scratch)>;

  /// Runs fn over fixed-size shards [begin, end) of [0, total) on the
  /// global pool, handing each invocation its slot's Scratch.
  static void Run(int64_t total, int64_t shard_size, const ShardFn& fn);
  static void Run(int64_t total, const ShardFn& fn);
};

}  // namespace exec
}  // namespace blazeit

#endif  // BLAZEIT_EXEC_FRAME_PIPELINE_H_
