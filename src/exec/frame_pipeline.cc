#include "exec/frame_pipeline.h"

#include <vector>

#include "exec/parallel_for.h"

namespace blazeit {
namespace exec {

void FramePipeline::Run(int64_t total, int64_t shard_size, const ShardFn& fn) {
  // One scratch per worker slot, allocated lazily by the render kernels on
  // that slot's first shard and reused for all its later shards. The
  // vector is per-Run (the pool can be resized between runs); the Images
  // inside still amortize across every shard of this sweep, which is
  // where the per-frame allocation cost was.
  std::vector<Scratch> scratch(
      static_cast<size_t>(ThreadPool::Instance().max_parallelism()));
  ParallelFor(total, shard_size, [&](int64_t begin, int64_t end, int slot) {
    fn(begin, end, &scratch[static_cast<size_t>(slot)]);
  });
}

void FramePipeline::Run(int64_t total, const ShardFn& fn) {
  Run(total, kDefaultShardSize, fn);
}

}  // namespace exec
}  // namespace blazeit
