#include "exec/parallel_for.h"

namespace blazeit {
namespace exec {

void ParallelFor(int64_t total, int64_t shard_size,
                 const std::function<void(int64_t begin, int64_t end,
                                          int slot)>& fn) {
  const int64_t shards = NumShards(total, shard_size);
  ThreadPool::Instance().RunShards(shards, [&](int64_t shard, int slot) {
    const int64_t begin = shard * shard_size;
    const int64_t end = begin + shard_size < total ? begin + shard_size : total;
    fn(begin, end, slot);
  });
}

void ParallelFor(int64_t total,
                 const std::function<void(int64_t begin, int64_t end,
                                          int slot)>& fn) {
  ParallelFor(total, kDefaultShardSize, fn);
}

}  // namespace exec
}  // namespace blazeit
