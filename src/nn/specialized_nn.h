#ifndef BLAZEIT_NN_SPECIALIZED_NN_H_
#define BLAZEIT_NN_SPECIALIZED_NN_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "util/artifact_cache.h"
#include "nn/trainer.h"
#include "util/status.h"
#include "video/synthetic_video.h"

namespace blazeit {

/// Configuration of a specialized NN (Sections 3, 9). The raster size and
/// MLP shape stand in for the paper's 65x65-input tiny ResNet; what matters
/// to the query optimizer is the accuracy/cost trade-off, which is
/// preserved (the cost model charges the paper's 10,000 fps rate).
struct SpecializedNNConfig {
  int raster_width = 32;
  int raster_height = 32;
  std::vector<int> hidden_dims = {64};
  TrainConfig train;
  /// Cap on the number of labeled frames used for training (subsampled
  /// evenly if the labeled day is longer).
  int64_t max_train_frames = 30000;
  /// Lower bound on the per-head class count (still capped by the highest
  /// label observed + 1). Scrubbing raises this to min_count + 1 so that
  /// P(count >= N) is represented directly instead of clamping N into the
  /// 1%-rule range, which is what makes the confidence ranking sharp
  /// enough to find rare events.
  int min_classes = 0;
  /// Optional persistent cache for trained weights and per-frame outputs
  /// (not owned; must outlive any NN trained with this config). Training
  /// and inference are deterministic per (day, labels, config), so cached
  /// artifacts are bit-identical to recomputation — query outputs and
  /// simulated costs never depend on whether this is set. The catalog
  /// wires the detection store in here; nullptr disables persistence.
  ArtifactCache* cache = nullptr;
};

/// Renders and flattens the frame at the specialized-NN raster size: the
/// shared input representation of all specialized models.
std::vector<float> FrameFeatures(const SyntheticVideo& video, int64_t frame,
                                 int width, int height);

/// The paper's rule for sizing the output layer of a counting NN
/// (Section 6.2): number of classes = the highest count occurring in at
/// least `min_fraction` of the labeled frames, plus one.
int ChooseNumClasses(const std::vector<int>& counts,
                     double min_fraction = 0.01);

/// A specialized NN with a shared trunk and one softmax "count head" per
/// queried object class (Section 7.1: for multi-class queries a single
/// network returns a separate confidence per class, chosen for class-
/// imbalance reasons). A single-head instance is the counting NN used for
/// aggregation (Section 6.2).
class SpecializedNN {
 public:
  /// Trains on a labeled day. `head_labels[h][i]` is the count label of
  /// head `h` at frame `i` of `train_day` (produced by the full detector —
  /// the "labeled set" of Section 2). Labels are clamped to the per-head
  /// class count chosen by ChooseNumClasses.
  static Result<SpecializedNN> Train(
      const SyntheticVideo& train_day,
      const std::vector<std::vector<int>>& head_labels,
      const SpecializedNNConfig& config);

  int num_heads() const;
  /// Number of count classes of a head (counts 0 .. classes-1).
  int head_classes(int head) const;
  /// Number of labeled frames actually used for training (for cost
  /// accounting: CostMeter::ChargeTraining).
  int64_t trained_frames() const;

  /// Per-head softmax probabilities for one frame.
  std::vector<std::vector<float>> PredictProbs(const SyntheticVideo& video,
                                               int64_t frame) const;

  /// Expected count under the head's softmax: sum_k k * p_k. Less biased
  /// than the argmax for aggregation.
  double ExpectedCount(const SyntheticVideo& video, int64_t frame,
                       int head = 0) const;

  /// Most likely count (argmax over the head's classes).
  int PredictCount(const SyntheticVideo& video, int64_t frame,
                   int head = 0) const;

  /// Importance-sampling signal for scrubbing (Section 7): the sum over
  /// heads of P(count >= min_counts[h]). Higher means the frame more
  /// likely satisfies the conjunctive "at least N of each class" predicate.
  double QueryConfidence(const SyntheticVideo& video, int64_t frame,
                         const std::vector<int>& min_counts) const;

  /// Batched ExpectedCount over many frames (one forward pass per ~256
  /// frames; ~10x faster than per-frame calls for full-day evaluation).
  std::vector<float> ExpectedCountsForFrames(
      const SyntheticVideo& video, const std::vector<int64_t>& frames,
      int head = 0) const;

  /// How multi-head tail probabilities combine into one confidence.
  /// kSum is the paper's formulation ("the sum of the probability of at
  /// least one bus and at least five cars"); kProduct scores the joint
  /// event under head independence, which ranks conjunctive queries much
  /// more sharply and is what the scrubbing executor uses by default.
  enum class ConjunctionMode { kSum, kProduct };

  /// Batched QueryConfidence over many frames.
  std::vector<float> QueryConfidencesForFrames(
      const SyntheticVideo& video, const std::vector<int64_t>& frames,
      const std::vector<int>& min_counts,
      ConjunctionMode mode = ConjunctionMode::kSum) const;

  const SpecializedNNConfig& config() const;

 private:
  struct Impl;
  explicit SpecializedNN(std::shared_ptr<Impl> impl)
      : impl_(std::move(impl)) {}

  /// Concatenated per-head softmax probabilities for each frame (the shared
  /// kernel of all inference entry points), served from the artifact cache
  /// when one is configured; misses run batched forward passes and are
  /// written back. Returns one flat row-major buffer of
  /// frames.size() x (sum of head class counts) floats — full-day
  /// evaluations stay a single allocation, not one vector per frame.
  std::vector<float> ProbsForFrames(const SyntheticVideo& video,
                                    const std::vector<int64_t>& frames) const;

  std::shared_ptr<Impl> impl_;
};

}  // namespace blazeit

#endif  // BLAZEIT_NN_SPECIALIZED_NN_H_
