#ifndef BLAZEIT_NN_OPTIMIZER_H_
#define BLAZEIT_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layers.h"

namespace blazeit {

/// SGD with momentum — the paper's training procedure (Section 9: SGD,
/// momentum 0.9).
class SgdOptimizer {
 public:
  SgdOptimizer(std::vector<ParamRef> params, double lr,
               double momentum = 0.9);

  /// Applies one update from the accumulated gradients.
  void Step();

  /// Clears all gradients; call after each Step.
  void ZeroGrad();

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 private:
  std::vector<ParamRef> params_;
  std::vector<std::vector<float>> velocity_;
  double lr_;
  double momentum_;
};

}  // namespace blazeit

#endif  // BLAZEIT_NN_OPTIMIZER_H_
