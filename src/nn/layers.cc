#include "nn/layers.h"

#include <cmath>

namespace blazeit {

Linear::Linear(int in_dim, int out_dim, Rng* rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      w_(in_dim, out_dim),
      w_grad_(in_dim, out_dim),
      b_(static_cast<size_t>(out_dim), 0.0f),
      b_grad_(b_.size(), 0.0f) {
  // He initialization for ReLU networks.
  double stddev = std::sqrt(2.0 / in_dim);
  for (float& w : w_.data()) w = static_cast<float>(rng->Normal(0.0, stddev));
}

Matrix Linear::Forward(const Matrix& input) {
  cached_input_ = input;
  return Infer(input);
}

Matrix Linear::Infer(const Matrix& input) const {
  Matrix out = MatMul(input, w_);
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    for (int c = 0; c < out_dim_; ++c) row[c] += b_[static_cast<size_t>(c)];
  }
  return out;
}

Matrix Linear::Backward(const Matrix& grad_output) {
  // dW += X^T dY ; db += colsum(dY) ; dX = dY W^T.
  Matrix dw = MatMulTransposeA(cached_input_, grad_output);
  for (size_t i = 0; i < w_grad_.data().size(); ++i) {
    w_grad_.data()[i] += dw.data()[i];
  }
  for (int r = 0; r < grad_output.rows(); ++r) {
    const float* row = grad_output.Row(r);
    for (int c = 0; c < out_dim_; ++c) b_grad_[static_cast<size_t>(c)] += row[c];
  }
  return MatMulTransposeB(grad_output, w_);
}

std::vector<ParamRef> Linear::Params() {
  return {{&w_.data(), &w_grad_.data()}, {&b_, &b_grad_}};
}

Matrix ReLU::Forward(const Matrix& input) {
  cached_input_ = input;
  return Infer(input);
}

Matrix ReLU::Infer(const Matrix& input) const {
  Matrix out = input;
  for (float& v : out.data()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Matrix ReLU::Backward(const Matrix& grad_output) {
  Matrix out = grad_output;
  const std::vector<float>& x = cached_input_.data();
  std::vector<float>& g = out.data();
  for (size_t i = 0; i < g.size(); ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return out;
}

Matrix Sequential::Forward(const Matrix& input) {
  Matrix x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Matrix Sequential::Infer(const Matrix& input) const {
  Matrix x = input;
  for (const auto& layer : layers_) x = layer->Infer(x);
  return x;
}

Matrix Sequential::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<ParamRef> Sequential::Params() {
  std::vector<ParamRef> params;
  for (auto& layer : layers_) {
    for (ParamRef p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::unique_ptr<Sequential> BuildMlp(int input_dim,
                                     const std::vector<int>& hidden_dims,
                                     int num_classes, Rng* rng) {
  auto model = std::make_unique<Sequential>();
  int dim = input_dim;
  for (int hidden : hidden_dims) {
    model->Add(std::make_unique<Linear>(dim, hidden, rng));
    model->Add(std::make_unique<ReLU>());
    dim = hidden;
  }
  model->Add(std::make_unique<Linear>(dim, num_classes, rng));
  return model;
}

}  // namespace blazeit
