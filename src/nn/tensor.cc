#include "nn/tensor.h"

#include <algorithm>

namespace blazeit {

void Matrix::Zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.Row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.Row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      float sum = 0.0f;
      for (int p = 0; p < k; ++p) sum += arow[p] * brow[p];
      crow[j] = sum;
    }
  }
  return c;
}

}  // namespace blazeit
