#include "nn/tensor.h"

#include <algorithm>

#include "nn/matmul_kernels.h"
#include "util/check.h"

namespace blazeit {

void Matrix::Zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

// Shape mismatches here would be silent out-of-bounds reads in Release
// builds if guarded by assert() (which compiles out under NDEBUG), so the
// checks are BLAZEIT_CHECK: always on, abort with the offending dims.

Matrix MatMul(const Matrix& a, const Matrix& b) {
  BLAZEIT_CHECK(a.cols() == b.rows())
      << " — MatMul shape mismatch: [" << a.rows() << "," << a.cols()
      << "] x [" << b.rows() << "," << b.cols() << "]";
  Matrix c(a.rows(), b.cols());
  matmul::MatMul(a.data().data(), b.data().data(), c.data().data(), a.rows(),
                 a.cols(), b.cols());
  return c;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  BLAZEIT_CHECK(a.rows() == b.rows())
      << " — MatMulTransposeA shape mismatch: [" << a.rows() << ","
      << a.cols() << "]^T x [" << b.rows() << "," << b.cols() << "]";
  Matrix c(a.cols(), b.cols());
  matmul::MatMulTransposeA(a.data().data(), b.data().data(), c.data().data(),
                           a.cols(), a.rows(), b.cols());
  return c;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  BLAZEIT_CHECK(a.cols() == b.cols())
      << " — MatMulTransposeB shape mismatch: [" << a.rows() << ","
      << a.cols() << "] x [" << b.rows() << "," << b.cols() << "]^T";
  Matrix c(a.rows(), b.rows());
  matmul::MatMulTransposeB(a.data().data(), b.data().data(), c.data().data(),
                           a.rows(), a.cols(), b.rows());
  return c;
}

}  // namespace blazeit
