#include "nn/optimizer.h"

#include <algorithm>

namespace blazeit {

SgdOptimizer::SgdOptimizer(std::vector<ParamRef> params, double lr,
                           double momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    velocity_.emplace_back(p.value->size(), 0.0f);
  }
}

void SgdOptimizer::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    std::vector<float>& value = *params_[i].value;
    std::vector<float>& grad = *params_[i].grad;
    std::vector<float>& vel = velocity_[i];
    const float m = static_cast<float>(momentum_);
    const float lr = static_cast<float>(lr_);
    for (size_t j = 0; j < value.size(); ++j) {
      vel[j] = m * vel[j] + grad[j];
      value[j] -= lr * vel[j];
    }
  }
}

void SgdOptimizer::ZeroGrad() {
  for (const ParamRef& p : params_) {
    std::fill(p.grad->begin(), p.grad->end(), 0.0f);
  }
}

}  // namespace blazeit
