#include "nn/specialized_nn.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "exec/frame_pipeline.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "nn/optimizer.h"
#include "util/cpu_features.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "video/render_features.h"

namespace blazeit {

std::vector<float> FrameFeatures(const SyntheticVideo& video, int64_t frame,
                                 int width, int height) {
  // Thin wrapper over the fused render→feature kernel
  // (video/render_features.h); batch loops skip this vector and render
  // straight into the NN input row.
  std::vector<float> features(static_cast<size_t>(width) * height *
                              kFeatureChannels);
  RenderFrameFeatures(video, frame, width, height, features.data());
  return features;
}

int ChooseNumClasses(const std::vector<int>& counts, double min_fraction) {
  if (counts.empty()) return 1;
  std::map<int, int64_t> hist;
  for (int c : counts) ++hist[std::max(0, c)];
  const double n = static_cast<double>(counts.size());
  int chosen = 0;
  int max_count = 0;
  for (const auto& [count, freq] : hist) {
    max_count = std::max(max_count, count);
    if (static_cast<double>(freq) / n >= min_fraction) {
      chosen = std::max(chosen, count);
    }
  }
  if (chosen == 0 && max_count > 0 && hist[0] / n < 1.0) {
    // Degenerate histogram (every non-zero bin below the cutoff): fall back
    // to covering everything seen.
    chosen = max_count;
  }
  return chosen + 1;
}

struct SpecializedNN::Impl {
  SpecializedNNConfig config;
  std::unique_ptr<Sequential> trunk;
  std::vector<std::unique_ptr<Linear>> heads;
  std::vector<int> head_classes;
  int64_t trained_frames = 0;
  int input_dim = 0;
  /// Content fingerprint of (training day, labels, config): the identity of
  /// this trained model in the artifact cache.
  uint64_t fingerprint = 0;
  ArtifactCache* cache = nullptr;

  std::vector<ParamRef> AllParams() {
    std::vector<ParamRef> params = trunk->Params();
    for (auto& head : heads) {
      for (ParamRef p : head->Params()) params.push_back(p);
    }
    return params;
  }
};

namespace {

/// Fingerprint of everything that determines the trained weights. The
/// cache pointer itself is deliberately excluded — it selects where
/// artifacts live, not what they contain.
uint64_t TrainFingerprint(const SyntheticVideo& train_day,
                          const std::vector<std::vector<int>>& head_labels,
                          const SpecializedNNConfig& config) {
  Fingerprint fp;
  fp.Mix(train_day.fingerprint())
      .Mix(config.raster_width)
      .Mix(config.raster_height)
      .MixRange(config.hidden_dims)
      .Mix(config.train.epochs)
      .Mix(config.train.batch_size)
      .Mix(config.train.lr)
      .Mix(config.train.lr_decay)
      .Mix(config.train.momentum)
      .Mix(config.train.seed)
      .Mix(config.max_train_frames)
      .Mix(config.min_classes);
  fp.Mix(static_cast<uint64_t>(head_labels.size()));
  for (const std::vector<int>& labels : head_labels) fp.MixRange(labels);
  return fp.value();
}

}  // namespace

Result<SpecializedNN> SpecializedNN::Train(
    const SyntheticVideo& train_day,
    const std::vector<std::vector<int>>& head_labels,
    const SpecializedNNConfig& config) {
  if (head_labels.empty())
    return Status::InvalidArgument("at least one head required");
  const int64_t n_labeled = static_cast<int64_t>(head_labels[0].size());
  if (n_labeled == 0)
    return Status::InvalidArgument("labeled set must be non-empty");
  for (const auto& labels : head_labels) {
    if (static_cast<int64_t>(labels.size()) != n_labeled)
      return Status::InvalidArgument("all heads need equally many labels");
  }
  if (n_labeled > train_day.num_frames())
    return Status::InvalidArgument(
        "more labels than frames in the training day");

  auto impl = std::make_shared<Impl>();
  impl->config = config;
  // 4 channels per grid cell: pooled R, G, B + foreground deviation.
  impl->input_dim = config.raster_width * config.raster_height * 4;

  // Subsample the labeled set evenly if it exceeds the training budget.
  std::vector<int64_t> indices;
  if (n_labeled <= config.max_train_frames) {
    indices.resize(static_cast<size_t>(n_labeled));
    std::iota(indices.begin(), indices.end(), 0);
  } else {
    double stride = static_cast<double>(n_labeled) /
                    static_cast<double>(config.max_train_frames);
    for (int64_t i = 0; i < config.max_train_frames; ++i) {
      indices.push_back(static_cast<int64_t>(i * stride));
    }
  }
  impl->trained_frames =
      static_cast<int64_t>(indices.size()) * config.train.epochs;

  // Size each head per the paper's 1% rule and clamp labels accordingly.
  const size_t num_heads = head_labels.size();
  std::vector<std::vector<int>> clamped(num_heads);
  for (size_t h = 0; h < num_heads; ++h) {
    std::vector<int> sub;
    sub.reserve(indices.size());
    for (int64_t idx : indices)
      sub.push_back(head_labels[h][static_cast<size_t>(idx)]);
    int classes = ChooseNumClasses(sub);
    if (config.min_classes > classes) {
      int max_label = 0;
      for (int c : sub) max_label = std::max(max_label, c);
      classes = std::min(config.min_classes, max_label + 1);
      classes = std::max(classes, 1);
    }
    impl->head_classes.push_back(classes);
    for (int& c : sub) c = std::clamp(c, 0, classes - 1);
    clamped[h] = std::move(sub);
  }

  // Build trunk and heads.
  Rng rng(config.train.seed);
  impl->trunk = std::make_unique<Sequential>();
  int dim = impl->input_dim;
  for (int hidden : config.hidden_dims) {
    impl->trunk->Add(std::make_unique<Linear>(dim, hidden, &rng));
    impl->trunk->Add(std::make_unique<ReLU>());
    dim = hidden;
  }
  for (size_t h = 0; h < num_heads; ++h) {
    impl->heads.push_back(
        std::make_unique<Linear>(dim, impl->head_classes[h], &rng));
  }

  // Collect all parameters for the optimizer.
  std::vector<ParamRef> params = impl->AllParams();

  // With a persistent cache, a previous process may already have trained
  // this exact model (same day, labels, and config — the fingerprint covers
  // them all). Loading the weights skips only the epoch loop below; the
  // architecture, head sizing, and trained_frames accounting above ran
  // identically, so a warm model is indistinguishable from a cold one.
  impl->fingerprint = TrainFingerprint(train_day, head_labels, config);
  impl->cache = config.cache;
  if (config.cache != nullptr) {
    size_t total_params = 0;
    for (const ParamRef& p : params) total_params += p.value->size();
    std::vector<float> blob;
    if (config.cache->GetBlob(impl->fingerprint, &blob)) {
      if (blob.size() == total_params) {
        size_t offset = 0;
        for (const ParamRef& p : params) {
          std::copy(blob.begin() + static_cast<std::ptrdiff_t>(offset),
                    blob.begin() +
                        static_cast<std::ptrdiff_t>(offset + p.value->size()),
                    p.value->begin());
          offset += p.value->size();
        }
        static obs::Counter* weight_hits =
            obs::MetricsRegistry::Global().GetCounter(
                "nn.weights_cache_hits", obs::Stability::kStable);
        weight_hits->Add();
        return SpecializedNN(std::move(impl));
      }
      BLAZEIT_LOG(kWarning)
          << "cached NN weights have " << blob.size() << " params, model has "
          << total_params << "; retraining";
    }
  }

  SgdOptimizer opt(params, config.train.lr, config.train.momentum);

  const int64_t n = static_cast<int64_t>(indices.size());
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<SoftmaxCrossEntropy> losses(num_heads);
  // Feature shard size for the per-batch parallel render: small because a
  // training mini-batch is only ~16 rows; fixed so shard boundaries (and
  // hence bits, trivially — rows are disjoint) never depend on threads.
  constexpr int64_t kTrainRenderShard = 4;

  for (int epoch = 0; epoch < config.train.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (int64_t start = 0; start < n; start += config.train.batch_size) {
      const int batch = static_cast<int>(
          std::min<int64_t>(config.train.batch_size, n - start));
      Matrix x(batch, impl->input_dim);
      std::vector<std::vector<int>> y(num_heads,
                                      std::vector<int>(static_cast<size_t>(batch)));
      // Rendering the batch rows dominates a training step; shard it
      // across the pool (disjoint Matrix rows, per-worker scratch). The
      // SGD step itself stays serial — its GEMMs shard internally.
      exec::FramePipeline::Run(
          batch, kTrainRenderShard,
          [&](int64_t rb, int64_t re, exec::FramePipeline::Scratch* scratch) {
            for (int64_t i = rb; i < re; ++i) {
              size_t pos =
                  static_cast<size_t>(order[static_cast<size_t>(start + i)]);
              RenderFrameFeatures(train_day, indices[pos], config.raster_width,
                                  config.raster_height,
                                  x.Row(static_cast<int>(i)), &scratch->image);
            }
          });
      for (int i = 0; i < batch; ++i) {
        size_t pos = static_cast<size_t>(order[static_cast<size_t>(start + i)]);
        for (size_t h = 0; h < num_heads; ++h)
          y[h][static_cast<size_t>(i)] = clamped[h][pos];
      }
      Matrix trunk_out = impl->trunk->Forward(x);
      Matrix dtrunk(trunk_out.rows(), trunk_out.cols());
      for (size_t h = 0; h < num_heads; ++h) {
        Matrix logits = impl->heads[h]->Forward(trunk_out);
        epoch_loss += losses[h].Forward(logits, y[h]);
        Matrix dhead = impl->heads[h]->Backward(losses[h].Backward());
        for (size_t j = 0; j < dtrunk.data().size(); ++j)
          dtrunk.data()[j] += dhead.data()[j];
      }
      impl->trunk->Backward(dtrunk);
      opt.Step();
      opt.ZeroGrad();
      ++batches;
    }
    BLAZEIT_LOG(kDebug) << "specialized NN epoch " << epoch << " loss "
                        << (batches ? epoch_loss / batches : 0.0);
    static obs::Counter* train_batches =
        obs::MetricsRegistry::Global().GetCounter("nn.train_batches",
                                                  obs::Stability::kStable);
    train_batches->Add(batches);
    opt.set_lr(opt.lr() * config.train.lr_decay);
  }
  if (config.cache != nullptr) {
    std::vector<float> blob;
    for (const ParamRef& p : params) {
      blob.insert(blob.end(), p.value->begin(), p.value->end());
    }
    config.cache->PutBlob(impl->fingerprint, blob);
  }
  return SpecializedNN(std::move(impl));
}

int SpecializedNN::num_heads() const {
  return static_cast<int>(impl_->heads.size());
}

int SpecializedNN::head_classes(int head) const {
  return impl_->head_classes[static_cast<size_t>(head)];
}

int64_t SpecializedNN::trained_frames() const {
  return impl_->trained_frames;
}

const SpecializedNNConfig& SpecializedNN::config() const {
  return impl_->config;
}

namespace {
constexpr int kEvalBatch = 256;
}  // namespace

std::vector<float> SpecializedNN::ProbsForFrames(
    const SyntheticVideo& video, const std::vector<int64_t>& frames) const {
  size_t concat_size = 0;
  for (int classes : impl_->head_classes) {
    concat_size += static_cast<size_t>(classes);
  }
  std::vector<float> out(frames.size() * concat_size);
  std::vector<size_t> miss;

  ArtifactCache* cache = impl_->cache;
  const uint64_t ns =
      cache ? HashCombine(impl_->fingerprint, video.fingerprint()) : 0;
  if (cache != nullptr) {
    std::vector<float> cached;
    for (size_t i = 0; i < frames.size(); ++i) {
      if (cache->GetFrameFloats(ns, frames[i], &cached) &&
          cached.size() == concat_size) {
        std::copy(cached.begin(), cached.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(i * concat_size));
      } else {
        miss.push_back(i);
      }
    }
  } else {
    miss.resize(frames.size());
    std::iota(miss.begin(), miss.end(), size_t{0});
  }

  // Batched forward passes over the misses, sharded across the exec pool
  // (one eval batch per shard, per-worker render scratch). Layer math is
  // row-independent and Infer is stateless, so how frames are grouped
  // into batches — and which worker runs which batch — cannot change any
  // output bit: a partially warm cache and any thread count yield the
  // same floats as a cold serial run. Each shard writes only its own
  // frames' disjoint slices of `out`.
  // Frames actually pushed through the kernels, labeled by the SIMD tier
  // dispatch resolved to (latched for the process, so the label — like
  // the count — is stable across pool sizes).
  static obs::Counter* inference_frames =
      obs::MetricsRegistry::Global().GetCounter(
          std::string("nn.inference_frames{tier=") + ActiveSimdTierName() +
              "}",
          obs::Stability::kStable);
  inference_frames->Add(static_cast<int64_t>(miss.size()));
  const int w = impl_->config.raster_width;
  const int h = impl_->config.raster_height;
  exec::FramePipeline::Run(
      static_cast<int64_t>(miss.size()), kEvalBatch,
      [&](int64_t start, int64_t end, exec::FramePipeline::Scratch* scratch) {
        const int batch = static_cast<int>(end - start);
        Matrix x(batch, impl_->input_dim);
        for (int i = 0; i < batch; ++i) {
          RenderFrameFeatures(
              video, frames[miss[static_cast<size_t>(start + i)]], w, h,
              x.Row(i), &scratch->image);
        }
        Matrix trunk_out = impl_->trunk->Infer(x);
        std::vector<Matrix> head_probs;
        head_probs.reserve(impl_->heads.size());
        for (const auto& head : impl_->heads) {
          head_probs.push_back(Softmax(head->Infer(trunk_out)));
        }
        for (int i = 0; i < batch; ++i) {
          const size_t slot = miss[static_cast<size_t>(start + i)];
          float* dst = out.data() + slot * concat_size;
          for (const Matrix& probs : head_probs) {
            dst = std::copy(probs.Row(i), probs.Row(i) + probs.cols(), dst);
          }
        }
      });
  // Write-back stays a serial frame-ordered sweep after the parallel
  // compute: the store's Put path is mutex-guarded but single-writer
  // ordering keeps segment layout reproducible run to run.
  if (cache != nullptr) {
    std::vector<float> row;
    for (size_t slot : miss) {
      row.assign(
          out.begin() + static_cast<std::ptrdiff_t>(slot * concat_size),
          out.begin() + static_cast<std::ptrdiff_t>((slot + 1) * concat_size));
      cache->PutFrameFloats(ns, frames[slot], row);
    }
  }
  return out;
}

std::vector<std::vector<float>> SpecializedNN::PredictProbs(
    const SyntheticVideo& video, int64_t frame) const {
  std::vector<float> concat = ProbsForFrames(video, {frame});
  std::vector<std::vector<float>> out;
  out.reserve(impl_->heads.size());
  size_t offset = 0;
  for (int classes : impl_->head_classes) {
    out.emplace_back(concat.begin() + static_cast<std::ptrdiff_t>(offset),
                     concat.begin() +
                         static_cast<std::ptrdiff_t>(offset) + classes);
    offset += static_cast<size_t>(classes);
  }
  return out;
}

double SpecializedNN::ExpectedCount(const SyntheticVideo& video,
                                    int64_t frame, int head) const {
  std::vector<std::vector<float>> probs = PredictProbs(video, frame);
  const std::vector<float>& p = probs[static_cast<size_t>(head)];
  double expected = 0;
  for (size_t k = 0; k < p.size(); ++k)
    expected += static_cast<double>(k) * static_cast<double>(p[k]);
  return expected;
}

int SpecializedNN::PredictCount(const SyntheticVideo& video, int64_t frame,
                                int head) const {
  std::vector<std::vector<float>> probs = PredictProbs(video, frame);
  const std::vector<float>& p = probs[static_cast<size_t>(head)];
  return static_cast<int>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<float> SpecializedNN::ExpectedCountsForFrames(
    const SyntheticVideo& video, const std::vector<int64_t>& frames,
    int head) const {
  std::vector<float> probs = ProbsForFrames(video, frames);
  size_t concat_size = 0;
  for (int classes : impl_->head_classes) {
    concat_size += static_cast<size_t>(classes);
  }
  size_t head_offset = 0;
  for (int h = 0; h < head; ++h) {
    head_offset += static_cast<size_t>(impl_->head_classes[static_cast<size_t>(h)]);
  }
  const int classes = impl_->head_classes[static_cast<size_t>(head)];
  std::vector<float> out;
  out.reserve(frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    const float* row = probs.data() + i * concat_size + head_offset;
    double expected = 0;
    for (int k = 0; k < classes; ++k) {
      expected += static_cast<double>(k) * static_cast<double>(row[k]);
    }
    out.push_back(static_cast<float>(expected));
  }
  return out;
}

std::vector<float> SpecializedNN::QueryConfidencesForFrames(
    const SyntheticVideo& video, const std::vector<int64_t>& frames,
    const std::vector<int>& min_counts, ConjunctionMode mode) const {
  const bool product = mode == ConjunctionMode::kProduct;
  std::vector<float> out(frames.size(), product ? 1.0f : 0.0f);
  std::vector<float> probs = ProbsForFrames(video, frames);
  size_t concat_size = 0;
  for (int classes : impl_->head_classes) {
    concat_size += static_cast<size_t>(classes);
  }
  size_t head_offset = 0;
  for (size_t head = 0;
       head < impl_->heads.size() && head < min_counts.size(); ++head) {
    const int classes = impl_->head_classes[head];
    const int min_c = std::clamp(min_counts[head], 0, classes - 1);
    for (size_t i = 0; i < frames.size(); ++i) {
      const float* row = probs.data() + i * concat_size + head_offset;
      double tail = 0;
      for (int k = min_c; k < classes; ++k) {
        tail += static_cast<double>(row[k]);
      }
      if (product) {
        out[i] *= static_cast<float>(tail);
      } else {
        out[i] += static_cast<float>(tail);
      }
    }
    head_offset += static_cast<size_t>(classes);
  }
  return out;
}

double SpecializedNN::QueryConfidence(
    const SyntheticVideo& video, int64_t frame,
    const std::vector<int>& min_counts) const {
  std::vector<std::vector<float>> probs = PredictProbs(video, frame);
  double confidence = 0;
  for (size_t h = 0; h < probs.size() && h < min_counts.size(); ++h) {
    const std::vector<float>& p = probs[h];
    // P(count >= min). Counts at or above the top class accumulate in the
    // top bin, so a clamp on min keeps the signal meaningful even when the
    // queried count exceeds the training-time class range.
    int min_c = std::min<int>(min_counts[h],
                              static_cast<int>(p.size()) - 1);
    double tail = 0;
    for (size_t k = static_cast<size_t>(std::max(0, min_c)); k < p.size();
         ++k) {
      tail += static_cast<double>(p[k]);
    }
    confidence += tail;
  }
  return confidence;
}

}  // namespace blazeit
