#ifndef BLAZEIT_NN_TRAINER_H_
#define BLAZEIT_NN_TRAINER_H_

#include <functional>
#include <vector>

#include "nn/layers.h"
#include "util/status.h"

namespace blazeit {

/// Mini-batch training configuration. Defaults follow the paper (Section 9:
/// cross-entropy loss, batch size 16, SGD momentum 0.9, one epoch).
struct TrainConfig {
  int epochs = 1;
  int batch_size = 16;
  double lr = 0.02;
  /// Multiplicative learning-rate decay applied after each epoch.
  double lr_decay = 0.5;
  double momentum = 0.9;
  uint64_t seed = 42;
};

/// Produces the feature vector of training example `index`. Features are
/// streamed per batch (frames are rendered on demand) so no full feature
/// matrix is ever materialized.
using FeatureFn = std::function<std::vector<float>(int64_t index)>;

/// Trains `model` (logits out) against integer labels with softmax
/// cross-entropy. Returns the mean loss over the final epoch.
///
/// Threading: the batch loop is serial (FeatureFn closures are not
/// required to be thread-safe, and SGD is an ordered recurrence), but the
/// forward/backward GEMMs inside shard across the exec pool — see
/// nn/matmul_kernels.h — so training still scales with BLAZEIT_THREADS
/// without changing a single output bit.
Result<double> TrainClassifier(Sequential* model, const FeatureFn& features,
                               const std::vector<int>& labels, int input_dim,
                               const TrainConfig& config);

}  // namespace blazeit

#endif  // BLAZEIT_NN_TRAINER_H_
