#ifndef BLAZEIT_NN_TENSOR_H_
#define BLAZEIT_NN_TENSOR_H_

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace blazeit {

/// Dense row-major float matrix: the only tensor shape the specialized NNs
/// need (batches of flattened frames). Kept deliberately small — this is a
/// training substrate, not a general ML framework.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool Empty() const { return rows_ == 0 || cols_ == 0; }

  float At(int r, int c) const { return data_[Index(r, c)]; }
  float& At(int r, int c) { return data_[Index(r, c)]; }

  /// Pointer to the start of a row.
  const float* Row(int r) const { return data_.data() + Index(r, 0); }
  float* Row(int r) { return data_.data() + Index(r, 0); }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void Zero();

 private:
  size_t Index(int r, int c) const {
    BLAZEIT_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return static_cast<size_t>(r) * static_cast<size_t>(cols_) +
           static_cast<size_t>(c);
  }

  int rows_;
  int cols_;
  std::vector<float> data_;
};

/// C = A * B. Shapes: [m,k] x [k,n] -> [m,n].
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B. Shapes: [k,m] x [k,n] -> [m,n]. Used for weight gradients.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

/// C = A * B^T. Shapes: [m,k] x [n,k] -> [m,n]. Used for input gradients.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

}  // namespace blazeit

#endif  // BLAZEIT_NN_TENSOR_H_
