#ifndef BLAZEIT_NN_MATMUL_KERNELS_H_
#define BLAZEIT_NN_MATMUL_KERNELS_H_

#include <cstddef>

namespace blazeit {
namespace matmul {

/// Raw GEMM kernels behind nn/tensor.h's MatMul entry points, runtime-
/// dispatched across three ISA tiers — AVX-512 tiles, AVX2 tiles, and
/// portable scalar loops (see util/cpu_features.h) — and sharded across
/// the exec thread pool when the product is large enough to pay for it.
/// All matrices are dense row-major float.
///
/// Bit-exactness contract (for finite inputs): for every output cell,
/// contributions accumulate in ascending-k order with multiply and add
/// kept separate (no FMA, no reassociated/horizontal reductions), and the
/// SIMD tiles assign each cell to one vector lane, so the scalar, AVX2,
/// and AVX-512 paths produce identical bits — dispatch can never change
/// query outputs, only wall clock. The same argument covers pool
/// sharding: shards split the output range (rows, or columns for
/// TransposeB) at fixed boundaries independent of thread count, each cell
/// still accumulating in one lane in ascending-k order, so results are
/// identical at any BLAZEIT_THREADS. tests/tensor_test.cc pins
/// scalar/SIMD parity on every tier. The finite-input scope exists
/// because the scalar kernels skip exact-zero left-operand coefficients
/// per element while the blocked SIMD tiles skip per row group (4 rows at
/// AVX-512, 2 at AVX2) — for finite operands the extra signed-zero
/// contributions are bit-neutral (see the kernel comments), but an
/// Inf/NaN in `b` under a zero coefficient (already-diverged training)
/// can differ between paths.

/// c[m,n] = a[m,k] * b[k,n]. `c` must be zero-initialized.
void MatMul(const float* a, const float* b, float* c, int m, int k, int n);
void MatMulScalar(const float* a, const float* b, float* c, int m, int k,
                  int n);

/// c[m,n] = a[k,m]^T * b[k,n]. `c` must be zero-initialized.
void MatMulTransposeA(const float* a, const float* b, float* c, int m, int k,
                      int n);
void MatMulTransposeAScalar(const float* a, const float* b, float* c, int m,
                            int k, int n);

/// c[m,n] = a[m,k] * b[n,k]^T. `c` may be uninitialized (every cell is a
/// full dot product and is stored exactly once).
void MatMulTransposeB(const float* a, const float* b, float* c, int m, int k,
                      int n);
void MatMulTransposeBScalar(const float* a, const float* b, float* c, int m,
                            int k, int n);

}  // namespace matmul
}  // namespace blazeit

#endif  // BLAZEIT_NN_MATMUL_KERNELS_H_
