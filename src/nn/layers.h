#ifndef BLAZEIT_NN_LAYERS_H_
#define BLAZEIT_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/tensor.h"
#include "util/random.h"

namespace blazeit {

/// A trainable parameter buffer and its gradient, exposed to the optimizer.
struct ParamRef {
  std::vector<float>* value;
  std::vector<float>* grad;
};

/// Base class for differentiable layers. Forward caches whatever Backward
/// needs; layers are therefore stateful per batch and not thread-safe.
/// Infer is the stateless counterpart: the same forward math, bit for
/// bit, with no activation caching — safe to call concurrently from the
/// exec pool's inference shards (parameters must not be mutated
/// meanwhile, i.e. never during training).
class Layer {
 public:
  virtual ~Layer() = default;
  virtual Matrix Forward(const Matrix& input) = 0;
  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input).
  virtual Matrix Backward(const Matrix& grad_output) = 0;
  /// Forward math without the Backward cache; const and thread-safe.
  virtual Matrix Infer(const Matrix& input) const = 0;
  virtual std::vector<ParamRef> Params() { return {}; }
};

/// Fully-connected layer: y = x W + b, with He-initialized weights.
class Linear : public Layer {
 public:
  Linear(int in_dim, int out_dim, Rng* rng);

  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  Matrix Infer(const Matrix& input) const override;
  std::vector<ParamRef> Params() override;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  /// Weight matrix, [in_dim, out_dim].
  const Matrix& weights() const { return w_; }

 private:
  int in_dim_;
  int out_dim_;
  Matrix w_, w_grad_;
  std::vector<float> b_, b_grad_;
  Matrix cached_input_;
};

/// Rectified linear activation.
class ReLU : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  Matrix Infer(const Matrix& input) const override;

 private:
  Matrix cached_input_;
};

/// A simple layer pipeline.
class Sequential : public Layer {
 public:
  Sequential() = default;

  void Add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  Matrix Infer(const Matrix& input) const override;
  std::vector<ParamRef> Params() override;

  size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Builds the "tiny" MLP used for specialization: input -> hidden ReLU
/// blocks -> num_classes logits. The paper's tiny ResNet plays the same
/// role (cheap, imperfect, correlated); see DESIGN.md.
std::unique_ptr<Sequential> BuildMlp(int input_dim,
                                     const std::vector<int>& hidden_dims,
                                     int num_classes, Rng* rng);

}  // namespace blazeit

#endif  // BLAZEIT_NN_LAYERS_H_
