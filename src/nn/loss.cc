#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace blazeit {

Matrix Softmax(const Matrix& logits) {
  Matrix out = logits;
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    float max_v = row[0];
    for (int c = 1; c < out.cols(); ++c) max_v = std::max(max_v, row[c]);
    float sum = 0.0f;
    for (int c = 0; c < out.cols(); ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    for (int c = 0; c < out.cols(); ++c) row[c] /= sum;
  }
  return out;
}

double SoftmaxCrossEntropy::Forward(const Matrix& logits,
                                    const std::vector<int>& labels) {
  BLAZEIT_CHECK(static_cast<int>(labels.size()) == logits.rows());
  probs_ = Softmax(logits);
  labels_ = labels;
  double loss = 0.0;
  for (int r = 0; r < logits.rows(); ++r) {
    BLAZEIT_CHECK(labels[static_cast<size_t>(r)] >= 0 &&
                  labels[static_cast<size_t>(r)] < logits.cols());
    float p = probs_.At(r, labels[static_cast<size_t>(r)]);
    loss -= static_cast<double>(std::log(std::max(p, 1e-12f)));
  }
  return loss / logits.rows();
}

Matrix SoftmaxCrossEntropy::Backward() const {
  Matrix grad = probs_;
  const float inv_n = 1.0f / grad.rows();
  for (int r = 0; r < grad.rows(); ++r) {
    float* row = grad.Row(r);
    row[labels_[static_cast<size_t>(r)]] -= 1.0f;
    for (int c = 0; c < grad.cols(); ++c) row[c] *= inv_n;
  }
  return grad;
}

}  // namespace blazeit
