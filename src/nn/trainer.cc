#include "nn/trainer.h"

#include <algorithm>
#include <numeric>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/string_util.h"

namespace blazeit {

Result<double> TrainClassifier(Sequential* model, const FeatureFn& features,
                               const std::vector<int>& labels, int input_dim,
                               const TrainConfig& config) {
  if (model == nullptr)
    return Status::InvalidArgument("model must not be null");
  if (labels.empty())
    return Status::InvalidArgument("training set must be non-empty");
  if (config.batch_size <= 0 || config.epochs <= 0)
    return Status::InvalidArgument("batch_size and epochs must be positive");

  const int64_t n = static_cast<int64_t>(labels.size());
  Rng rng(config.seed);
  SgdOptimizer opt(model->Params(), config.lr, config.momentum);
  SoftmaxCrossEntropy loss_fn;

  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  double final_epoch_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (int64_t start = 0; start < n; start += config.batch_size) {
      const int batch =
          static_cast<int>(std::min<int64_t>(config.batch_size, n - start));
      Matrix x(batch, input_dim);
      std::vector<int> y(static_cast<size_t>(batch));
      for (int i = 0; i < batch; ++i) {
        int64_t idx = order[static_cast<size_t>(start + i)];
        std::vector<float> feat = features(idx);
        if (static_cast<int>(feat.size()) != input_dim) {
          return Status::InvalidArgument(StrFormat(
              "feature size %d does not match input_dim %d",
              static_cast<int>(feat.size()), input_dim));
        }
        std::copy(feat.begin(), feat.end(), x.Row(i));
        y[static_cast<size_t>(i)] = labels[static_cast<size_t>(idx)];
      }
      Matrix logits = model->Forward(x);
      epoch_loss += loss_fn.Forward(logits, y);
      ++batches;
      opt.ZeroGrad();
      model->Backward(loss_fn.Backward());
      opt.Step();
    }
    final_epoch_loss = batches > 0 ? epoch_loss / batches : 0.0;
    opt.set_lr(opt.lr() * config.lr_decay);
  }
  return final_epoch_loss;
}

}  // namespace blazeit
