#include "nn/matmul_kernels.h"

#include <cstdint>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define BLAZEIT_X86_64 1
#endif

#include "util/cpu_features.h"

namespace blazeit {
namespace matmul {

// ---------------------------------------------------------------------------
// Scalar kernels: saxpy-style inner loops that the autovectorizer handles
// at -O2, with an exact-zero skip that pays off on ReLU activations.
// ---------------------------------------------------------------------------

void MatMulScalar(const float* a, const float* b, float* c, int m, int k,
                  int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeAScalar(const float* a, const float* b, float* c, int m,
                            int k, int n) {
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<size_t>(p) * m;
    const float* brow = b + static_cast<size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeBScalar(const float* a, const float* b, float* c, int m,
                            int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<size_t>(j) * k;
      float sum = 0.0f;
      for (int p = 0; p < k; ++p) sum += arow[p] * brow[p];
      crow[j] = sum;
    }
  }
}

// ---------------------------------------------------------------------------
// AVX-512 kernels. Each output cell lives in exactly one vector lane and
// accumulates its k-contributions in ascending order with separate
// multiply/add intrinsics, so results are bit-identical to the scalar
// kernels above. Column tiles of 64 (four zmm accumulators) give four
// independent add chains, hiding FP add latency.
// ---------------------------------------------------------------------------

#ifdef BLAZEIT_X86_64

// GCC 12's maskz load/store intrinsics expand through an uninitialized
// placeholder vector, tripping -Wmaybe-uninitialized at -O2; the pattern
// is well-defined (masked lanes are zeroed), so silence the false
// positive for the kernel bodies only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace {

/// Per-16-column lane masks for a 64-wide column group starting at j0.
inline void ColumnMasks(int n, int j0, __mmask16 mask[4]) {
  for (int t = 0; t < 4; ++t) {
    int live = n - (j0 + 16 * t);
    live = live < 0 ? 0 : (live > 16 ? 16 : live);
    mask[t] = static_cast<__mmask16>((1u << live) - 1u);
  }
}

}  // namespace

__attribute__((target("avx512f,avx512dq"))) void MatMulAvx512(
    const float* a, const float* b, float* c, int m, int k, int n) {
  // Row blocks of four share one streaming pass over b (the dominant
  // memory traffic: b is re-read once per row block, so blocking cuts it
  // 4x), with one 64-column group of accumulators per row — 16 zmm live.
  // A coefficient that is exactly zero contributes only a signed zero,
  // and adding a signed zero never changes a finite partial sum (a +0
  // accumulator stays +0 under round-to-nearest), so the unconditional
  // multiply-add in the 4-row block is bit-identical to the scalar
  // kernel's skip for finite inputs; the all-four-zero check keeps the
  // ReLU-sparsity win.
  for (int j0 = 0; j0 < n; j0 += 64) {
    __mmask16 mask[4];
    ColumnMasks(n, j0, mask);
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + static_cast<size_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      __m512 acc[4][4];
      for (int r = 0; r < 4; ++r) {
        for (int t = 0; t < 4; ++t) acc[r][t] = _mm512_setzero_ps();
      }
      for (int p = 0; p < k; ++p) {
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        const __m512 w0 = _mm512_set1_ps(v0);
        const __m512 w1 = _mm512_set1_ps(v1);
        const __m512 w2 = _mm512_set1_ps(v2);
        const __m512 w3 = _mm512_set1_ps(v3);
        for (int t = 0; t < 4; ++t) {
          const __m512 bv = _mm512_maskz_loadu_ps(mask[t], brow + 16 * t);
          acc[0][t] = _mm512_add_ps(acc[0][t], _mm512_mul_ps(w0, bv));
          acc[1][t] = _mm512_add_ps(acc[1][t], _mm512_mul_ps(w1, bv));
          acc[2][t] = _mm512_add_ps(acc[2][t], _mm512_mul_ps(w2, bv));
          acc[3][t] = _mm512_add_ps(acc[3][t], _mm512_mul_ps(w3, bv));
        }
      }
      for (int r = 0; r < 4; ++r) {
        float* crow = c + static_cast<size_t>(i + r) * n + j0;
        for (int t = 0; t < 4; ++t) {
          _mm512_mask_storeu_ps(crow + 16 * t, mask[t], acc[r][t]);
        }
      }
    }
    for (; i < m; ++i) {
      const float* arow = a + static_cast<size_t>(i) * k;
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      __m512 acc2 = _mm512_setzero_ps();
      __m512 acc3 = _mm512_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const __m512 avv = _mm512_set1_ps(av);
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        acc0 = _mm512_add_ps(
            acc0, _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[0], brow)));
        acc1 = _mm512_add_ps(
            acc1,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[1], brow + 16)));
        acc2 = _mm512_add_ps(
            acc2,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[2], brow + 32)));
        acc3 = _mm512_add_ps(
            acc3,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[3], brow + 48)));
      }
      float* crow = c + static_cast<size_t>(i) * n + j0;
      _mm512_mask_storeu_ps(crow, mask[0], acc0);
      _mm512_mask_storeu_ps(crow + 16, mask[1], acc1);
      _mm512_mask_storeu_ps(crow + 32, mask[2], acc2);
      _mm512_mask_storeu_ps(crow + 48, mask[3], acc3);
    }
  }
}

__attribute__((target("avx512f,avx512dq"))) void MatMulTransposeAAvx512(
    const float* a, const float* b, float* c, int m, int k, int n) {
  // Same tile shape and row blocking as MatMulAvx512; the only difference
  // is that row i's coefficient at step p comes from a's column i, so a
  // 4-row block reads its four coefficients as one contiguous quad at
  // a[p*m + i]. Per-cell accumulation order and zero handling match the
  // scalar kernel bit-for-bit (see the signed-zero note above).
  for (int j0 = 0; j0 < n; j0 += 64) {
    __mmask16 mask[4];
    ColumnMasks(n, j0, mask);
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      __m512 acc[4][4];
      for (int r = 0; r < 4; ++r) {
        for (int t = 0; t < 4; ++t) acc[r][t] = _mm512_setzero_ps();
      }
      for (int p = 0; p < k; ++p) {
        const float* ap = a + static_cast<size_t>(p) * m + i;
        const float v0 = ap[0], v1 = ap[1], v2 = ap[2], v3 = ap[3];
        if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        const __m512 w0 = _mm512_set1_ps(v0);
        const __m512 w1 = _mm512_set1_ps(v1);
        const __m512 w2 = _mm512_set1_ps(v2);
        const __m512 w3 = _mm512_set1_ps(v3);
        for (int t = 0; t < 4; ++t) {
          const __m512 bv = _mm512_maskz_loadu_ps(mask[t], brow + 16 * t);
          acc[0][t] = _mm512_add_ps(acc[0][t], _mm512_mul_ps(w0, bv));
          acc[1][t] = _mm512_add_ps(acc[1][t], _mm512_mul_ps(w1, bv));
          acc[2][t] = _mm512_add_ps(acc[2][t], _mm512_mul_ps(w2, bv));
          acc[3][t] = _mm512_add_ps(acc[3][t], _mm512_mul_ps(w3, bv));
        }
      }
      for (int r = 0; r < 4; ++r) {
        float* crow = c + static_cast<size_t>(i + r) * n + j0;
        for (int t = 0; t < 4; ++t) {
          _mm512_mask_storeu_ps(crow + 16 * t, mask[t], acc[r][t]);
        }
      }
    }
    for (; i < m; ++i) {
      const float* acol = a + i;
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      __m512 acc2 = _mm512_setzero_ps();
      __m512 acc3 = _mm512_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const float av = acol[static_cast<size_t>(p) * m];
        if (av == 0.0f) continue;
        const __m512 avv = _mm512_set1_ps(av);
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        acc0 = _mm512_add_ps(
            acc0, _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[0], brow)));
        acc1 = _mm512_add_ps(
            acc1,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[1], brow + 16)));
        acc2 = _mm512_add_ps(
            acc2,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[2], brow + 32)));
        acc3 = _mm512_add_ps(
            acc3,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[3], brow + 48)));
      }
      float* crow = c + static_cast<size_t>(i) * n + j0;
      _mm512_mask_storeu_ps(crow, mask[0], acc0);
      _mm512_mask_storeu_ps(crow + 16, mask[1], acc1);
      _mm512_mask_storeu_ps(crow + 32, mask[2], acc2);
      _mm512_mask_storeu_ps(crow + 48, mask[3], acc3);
    }
  }
}

__attribute__((target("avx512f,avx512dq"))) void MatMulTransposeBAvx512(
    const float* a, const float* b, float* c, int m, int k, int n) {
  // Every cell is a strict-order dot product over k, so the j dimension is
  // vectorized instead: pack a 16-column tile of b transposed (so step p
  // reads 16 contiguous floats), then sweep rows of a four at a time for
  // four independent accumulator chains. Lane j keeps its own running sum
  // in ascending-p order — identical bits to the scalar dot product.
  std::vector<float> bt(static_cast<size_t>(k) * 16);
  for (int j0 = 0; j0 < n; j0 += 16) {
    const int jw = n - j0 < 16 ? n - j0 : 16;
    const __mmask16 mask = static_cast<__mmask16>((1u << jw) - 1u);
    for (int p = 0; p < k; ++p) {
      float* row = bt.data() + static_cast<size_t>(p) * 16;
      for (int t = 0; t < jw; ++t) {
        row[t] = b[static_cast<size_t>(j0 + t) * k + p];
      }
      for (int t = jw; t < 16; ++t) row[t] = 0.0f;
    }
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + static_cast<size_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      __m512 acc2 = _mm512_setzero_ps();
      __m512 acc3 = _mm512_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const __m512 bv = _mm512_loadu_ps(bt.data() + static_cast<size_t>(p) * 16);
        acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(_mm512_set1_ps(a0[p]), bv));
        acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(_mm512_set1_ps(a1[p]), bv));
        acc2 = _mm512_add_ps(acc2, _mm512_mul_ps(_mm512_set1_ps(a2[p]), bv));
        acc3 = _mm512_add_ps(acc3, _mm512_mul_ps(_mm512_set1_ps(a3[p]), bv));
      }
      _mm512_mask_storeu_ps(c + static_cast<size_t>(i) * n + j0, mask, acc0);
      _mm512_mask_storeu_ps(c + static_cast<size_t>(i + 1) * n + j0, mask, acc1);
      _mm512_mask_storeu_ps(c + static_cast<size_t>(i + 2) * n + j0, mask, acc2);
      _mm512_mask_storeu_ps(c + static_cast<size_t>(i + 3) * n + j0, mask, acc3);
    }
    for (; i < m; ++i) {
      const float* a0 = a + static_cast<size_t>(i) * k;
      __m512 acc = _mm512_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const __m512 bv = _mm512_loadu_ps(bt.data() + static_cast<size_t>(p) * 16);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(_mm512_set1_ps(a0[p]), bv));
      }
      _mm512_mask_storeu_ps(c + static_cast<size_t>(i) * n + j0, mask, acc);
    }
  }
}

#pragma GCC diagnostic pop

#endif  // BLAZEIT_X86_64

// ---------------------------------------------------------------------------
// Dispatchers
// ---------------------------------------------------------------------------

void MatMul(const float* a, const float* b, float* c, int m, int k, int n) {
#ifdef BLAZEIT_X86_64
  if (CpuHasAvx512()) {
    MatMulAvx512(a, b, c, m, k, n);
    return;
  }
#endif
  MatMulScalar(a, b, c, m, k, n);
}

void MatMulTransposeA(const float* a, const float* b, float* c, int m, int k,
                      int n) {
#ifdef BLAZEIT_X86_64
  if (CpuHasAvx512()) {
    MatMulTransposeAAvx512(a, b, c, m, k, n);
    return;
  }
#endif
  MatMulTransposeAScalar(a, b, c, m, k, n);
}

void MatMulTransposeB(const float* a, const float* b, float* c, int m, int k,
                      int n) {
#ifdef BLAZEIT_X86_64
  if (CpuHasAvx512()) {
    MatMulTransposeBAvx512(a, b, c, m, k, n);
    return;
  }
#endif
  MatMulTransposeBScalar(a, b, c, m, k, n);
}

}  // namespace matmul
}  // namespace blazeit
