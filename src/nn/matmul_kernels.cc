#include "nn/matmul_kernels.h"

#include <cstdint>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define BLAZEIT_X86_64 1
#endif

#include "exec/parallel_for.h"
#include "util/cpu_features.h"

namespace blazeit {
namespace matmul {

// All kernels are written over a *range* of the output — rows [i0, i1)
// for MatMul / MatMulTransposeA, columns [j0, j1) for MatMulTransposeB —
// so the dispatchers can shard one GEMM across the exec thread pool.
// Range boundaries never change per-cell arithmetic: every output cell
// still accumulates its k-contributions in ascending order in one lane,
// so a sharded product is bit-identical to the single-range call (the
// blocked kernels' group-of-rows zero-skip differs at shard boundaries,
// but as documented in the header, skipped-vs-added signed zeros are
// bit-neutral for finite inputs). Shard sizes are fixed constants —
// independent of thread count — and large GEMMs are *always* decomposed
// (inline and in order when the pool is serial), so even the
// non-finite-input edge cannot vary with BLAZEIT_THREADS.

namespace {

/// Minimum multiply-add count before a GEMM is worth sharding across the
/// pool (below this, shard bookkeeping rivals the math).
constexpr int64_t kParallelFlops = int64_t{1} << 22;
/// Rows per shard (multiple of the 4-row kernel blocks).
constexpr int kRowShard = 32;
/// Columns per shard for MatMulTransposeB (multiple of the 16-wide tile).
constexpr int kColShard = 64;

bool WorthSharding(int m, int k, int n, int span, int shard) {
  return static_cast<int64_t>(m) * k * n >= kParallelFlops &&
         span >= 2 * shard;
}

// ---------------------------------------------------------------------------
// Scalar kernels: saxpy-style inner loops that the autovectorizer handles
// at -O2, with an exact-zero skip that pays off on ReLU activations.
// ---------------------------------------------------------------------------

void MatMulScalarRows(const float* a, const float* b, float* c, int k, int n,
                      int i0, int i1) {
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeAScalarRows(const float* a, const float* b, float* c,
                                int m, int k, int n, int i0, int i1) {
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<size_t>(p) * m;
    const float* brow = b + static_cast<size_t>(p) * n;
    for (int i = i0; i < i1; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeBScalarCols(const float* a, const float* b, float* c,
                                int m, int k, int n, int j0, int j1) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = j0; j < j1; ++j) {
      const float* brow = b + static_cast<size_t>(j) * k;
      float sum = 0.0f;
      for (int p = 0; p < k; ++p) sum += arow[p] * brow[p];
      crow[j] = sum;
    }
  }
}

}  // namespace

void MatMulScalar(const float* a, const float* b, float* c, int m, int k,
                  int n) {
  MatMulScalarRows(a, b, c, k, n, 0, m);
}

void MatMulTransposeAScalar(const float* a, const float* b, float* c, int m,
                            int k, int n) {
  MatMulTransposeAScalarRows(a, b, c, m, k, n, 0, m);
}

void MatMulTransposeBScalar(const float* a, const float* b, float* c, int m,
                            int k, int n) {
  MatMulTransposeBScalarCols(a, b, c, m, k, n, 0, n);
}

// ---------------------------------------------------------------------------
// AVX-512 kernels. Each output cell lives in exactly one vector lane and
// accumulates its k-contributions in ascending order with separate
// multiply/add intrinsics, so results are bit-identical to the scalar
// kernels above. Column tiles of 64 (four zmm accumulators) give four
// independent add chains, hiding FP add latency.
// ---------------------------------------------------------------------------

#ifdef BLAZEIT_X86_64

// GCC 12's maskz load/store intrinsics expand through an uninitialized
// placeholder vector, tripping -Wmaybe-uninitialized at -O2; the pattern
// is well-defined (masked lanes are zeroed), so silence the false
// positive for the kernel bodies only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace {

/// Per-16-column lane masks for a 64-wide column group starting at j0.
inline void ColumnMasks(int n, int j0, __mmask16 mask[4]) {
  for (int t = 0; t < 4; ++t) {
    int live = n - (j0 + 16 * t);
    live = live < 0 ? 0 : (live > 16 ? 16 : live);
    mask[t] = static_cast<__mmask16>((1u << live) - 1u);
  }
}

__attribute__((target("avx512f,avx512dq"))) void MatMulAvx512Rows(
    const float* a, const float* b, float* c, int k, int n, int i0, int i1) {
  // Row blocks of four share one streaming pass over b (the dominant
  // memory traffic: b is re-read once per row block, so blocking cuts it
  // 4x), with one 64-column group of accumulators per row — 16 zmm live.
  // A coefficient that is exactly zero contributes only a signed zero,
  // and adding a signed zero never changes a finite partial sum (a +0
  // accumulator stays +0 under round-to-nearest), so the unconditional
  // multiply-add in the 4-row block is bit-identical to the scalar
  // kernel's skip for finite inputs; the all-four-zero check keeps the
  // ReLU-sparsity win.
  for (int j0 = 0; j0 < n; j0 += 64) {
    __mmask16 mask[4];
    ColumnMasks(n, j0, mask);
    int i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* a0 = a + static_cast<size_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      __m512 acc[4][4];
      for (int r = 0; r < 4; ++r) {
        for (int t = 0; t < 4; ++t) acc[r][t] = _mm512_setzero_ps();
      }
      for (int p = 0; p < k; ++p) {
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        const __m512 w0 = _mm512_set1_ps(v0);
        const __m512 w1 = _mm512_set1_ps(v1);
        const __m512 w2 = _mm512_set1_ps(v2);
        const __m512 w3 = _mm512_set1_ps(v3);
        for (int t = 0; t < 4; ++t) {
          const __m512 bv = _mm512_maskz_loadu_ps(mask[t], brow + 16 * t);
          acc[0][t] = _mm512_add_ps(acc[0][t], _mm512_mul_ps(w0, bv));
          acc[1][t] = _mm512_add_ps(acc[1][t], _mm512_mul_ps(w1, bv));
          acc[2][t] = _mm512_add_ps(acc[2][t], _mm512_mul_ps(w2, bv));
          acc[3][t] = _mm512_add_ps(acc[3][t], _mm512_mul_ps(w3, bv));
        }
      }
      for (int r = 0; r < 4; ++r) {
        float* crow = c + static_cast<size_t>(i + r) * n + j0;
        for (int t = 0; t < 4; ++t) {
          _mm512_mask_storeu_ps(crow + 16 * t, mask[t], acc[r][t]);
        }
      }
    }
    for (; i < i1; ++i) {
      const float* arow = a + static_cast<size_t>(i) * k;
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      __m512 acc2 = _mm512_setzero_ps();
      __m512 acc3 = _mm512_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const __m512 avv = _mm512_set1_ps(av);
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        acc0 = _mm512_add_ps(
            acc0, _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[0], brow)));
        acc1 = _mm512_add_ps(
            acc1,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[1], brow + 16)));
        acc2 = _mm512_add_ps(
            acc2,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[2], brow + 32)));
        acc3 = _mm512_add_ps(
            acc3,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[3], brow + 48)));
      }
      float* crow = c + static_cast<size_t>(i) * n + j0;
      _mm512_mask_storeu_ps(crow, mask[0], acc0);
      _mm512_mask_storeu_ps(crow + 16, mask[1], acc1);
      _mm512_mask_storeu_ps(crow + 32, mask[2], acc2);
      _mm512_mask_storeu_ps(crow + 48, mask[3], acc3);
    }
  }
}

__attribute__((target("avx512f,avx512dq"))) void MatMulTransposeAAvx512Rows(
    const float* a, const float* b, float* c, int m, int k, int n, int i0,
    int i1) {
  // Same tile shape and row blocking as MatMulAvx512Rows; the only
  // difference is that row i's coefficient at step p comes from a's
  // column i, so a 4-row block reads its four coefficients as one
  // contiguous quad at a[p*m + i]. Per-cell accumulation order and zero
  // handling match the scalar kernel bit-for-bit (see the signed-zero
  // note above).
  for (int j0 = 0; j0 < n; j0 += 64) {
    __mmask16 mask[4];
    ColumnMasks(n, j0, mask);
    int i = i0;
    for (; i + 4 <= i1; i += 4) {
      __m512 acc[4][4];
      for (int r = 0; r < 4; ++r) {
        for (int t = 0; t < 4; ++t) acc[r][t] = _mm512_setzero_ps();
      }
      for (int p = 0; p < k; ++p) {
        const float* ap = a + static_cast<size_t>(p) * m + i;
        const float v0 = ap[0], v1 = ap[1], v2 = ap[2], v3 = ap[3];
        if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        const __m512 w0 = _mm512_set1_ps(v0);
        const __m512 w1 = _mm512_set1_ps(v1);
        const __m512 w2 = _mm512_set1_ps(v2);
        const __m512 w3 = _mm512_set1_ps(v3);
        for (int t = 0; t < 4; ++t) {
          const __m512 bv = _mm512_maskz_loadu_ps(mask[t], brow + 16 * t);
          acc[0][t] = _mm512_add_ps(acc[0][t], _mm512_mul_ps(w0, bv));
          acc[1][t] = _mm512_add_ps(acc[1][t], _mm512_mul_ps(w1, bv));
          acc[2][t] = _mm512_add_ps(acc[2][t], _mm512_mul_ps(w2, bv));
          acc[3][t] = _mm512_add_ps(acc[3][t], _mm512_mul_ps(w3, bv));
        }
      }
      for (int r = 0; r < 4; ++r) {
        float* crow = c + static_cast<size_t>(i + r) * n + j0;
        for (int t = 0; t < 4; ++t) {
          _mm512_mask_storeu_ps(crow + 16 * t, mask[t], acc[r][t]);
        }
      }
    }
    for (; i < i1; ++i) {
      const float* acol = a + i;
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      __m512 acc2 = _mm512_setzero_ps();
      __m512 acc3 = _mm512_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const float av = acol[static_cast<size_t>(p) * m];
        if (av == 0.0f) continue;
        const __m512 avv = _mm512_set1_ps(av);
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        acc0 = _mm512_add_ps(
            acc0, _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[0], brow)));
        acc1 = _mm512_add_ps(
            acc1,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[1], brow + 16)));
        acc2 = _mm512_add_ps(
            acc2,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[2], brow + 32)));
        acc3 = _mm512_add_ps(
            acc3,
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(mask[3], brow + 48)));
      }
      float* crow = c + static_cast<size_t>(i) * n + j0;
      _mm512_mask_storeu_ps(crow, mask[0], acc0);
      _mm512_mask_storeu_ps(crow + 16, mask[1], acc1);
      _mm512_mask_storeu_ps(crow + 32, mask[2], acc2);
      _mm512_mask_storeu_ps(crow + 48, mask[3], acc3);
    }
  }
}

__attribute__((target("avx512f,avx512dq"))) void MatMulTransposeBAvx512Cols(
    const float* a, const float* b, float* c, int m, int k, int n, int jb,
    int je) {
  // Every cell is a strict-order dot product over k, so the j dimension is
  // vectorized instead: pack a 16-column tile of b transposed (so step p
  // reads 16 contiguous floats), then sweep rows of a four at a time for
  // four independent accumulator chains. Lane j keeps its own running sum
  // in ascending-p order — identical bits to the scalar dot product.
  std::vector<float> bt(static_cast<size_t>(k) * 16);
  for (int j0 = jb; j0 < je; j0 += 16) {
    const int jw = je - j0 < 16 ? je - j0 : 16;
    const __mmask16 mask = static_cast<__mmask16>((1u << jw) - 1u);
    for (int p = 0; p < k; ++p) {
      float* row = bt.data() + static_cast<size_t>(p) * 16;
      for (int t = 0; t < jw; ++t) {
        row[t] = b[static_cast<size_t>(j0 + t) * k + p];
      }
      for (int t = jw; t < 16; ++t) row[t] = 0.0f;
    }
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + static_cast<size_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      __m512 acc2 = _mm512_setzero_ps();
      __m512 acc3 = _mm512_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const __m512 bv = _mm512_loadu_ps(bt.data() + static_cast<size_t>(p) * 16);
        acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(_mm512_set1_ps(a0[p]), bv));
        acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(_mm512_set1_ps(a1[p]), bv));
        acc2 = _mm512_add_ps(acc2, _mm512_mul_ps(_mm512_set1_ps(a2[p]), bv));
        acc3 = _mm512_add_ps(acc3, _mm512_mul_ps(_mm512_set1_ps(a3[p]), bv));
      }
      _mm512_mask_storeu_ps(c + static_cast<size_t>(i) * n + j0, mask, acc0);
      _mm512_mask_storeu_ps(c + static_cast<size_t>(i + 1) * n + j0, mask, acc1);
      _mm512_mask_storeu_ps(c + static_cast<size_t>(i + 2) * n + j0, mask, acc2);
      _mm512_mask_storeu_ps(c + static_cast<size_t>(i + 3) * n + j0, mask, acc3);
    }
    for (; i < m; ++i) {
      const float* a0 = a + static_cast<size_t>(i) * k;
      __m512 acc = _mm512_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const __m512 bv = _mm512_loadu_ps(bt.data() + static_cast<size_t>(p) * 16);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(_mm512_set1_ps(a0[p]), bv));
      }
      _mm512_mask_storeu_ps(c + static_cast<size_t>(i) * n + j0, mask, acc);
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 tier: the same tiling ideas at 256 bits — 32-column groups (four
// ymm accumulators) with 2-row blocks, per-8-column tail masks built by
// integer compare. Per-cell accumulation stays ascending-k with separate
// multiply/add, so this tier too is bit-identical to scalar for finite
// inputs (the 2-row blocks skip a step only when both coefficients are
// exactly zero; see the signed-zero note above).
// ---------------------------------------------------------------------------

/// All-ones in lanes [0, live), zeros beyond — the AVX2 maskload/maskstore
/// mask for a partial 8-column subgroup.
__attribute__((target("avx2"))) inline __m256i LaneMaskAvx2(int live) {
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(live), iota);
}

__attribute__((target("avx2"))) void MatMulAvx2Rows(const float* a,
                                                    const float* b, float* c,
                                                    int k, int n, int i0,
                                                    int i1) {
  for (int j0 = 0; j0 < n; j0 += 32) {
    __m256i mask[4];
    for (int t = 0; t < 4; ++t) {
      int live = n - (j0 + 8 * t);
      live = live < 0 ? 0 : (live > 8 ? 8 : live);
      mask[t] = LaneMaskAvx2(live);
    }
    int i = i0;
    for (; i + 2 <= i1; i += 2) {
      const float* a0 = a + static_cast<size_t>(i) * k;
      const float* a1 = a0 + k;
      __m256 acc[2][4];
      for (int r = 0; r < 2; ++r) {
        for (int t = 0; t < 4; ++t) acc[r][t] = _mm256_setzero_ps();
      }
      for (int p = 0; p < k; ++p) {
        const float v0 = a0[p], v1 = a1[p];
        if (v0 == 0.0f && v1 == 0.0f) continue;
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        const __m256 w0 = _mm256_set1_ps(v0);
        const __m256 w1 = _mm256_set1_ps(v1);
        for (int t = 0; t < 4; ++t) {
          const __m256 bv = _mm256_maskload_ps(brow + 8 * t, mask[t]);
          acc[0][t] = _mm256_add_ps(acc[0][t], _mm256_mul_ps(w0, bv));
          acc[1][t] = _mm256_add_ps(acc[1][t], _mm256_mul_ps(w1, bv));
        }
      }
      for (int r = 0; r < 2; ++r) {
        float* crow = c + static_cast<size_t>(i + r) * n + j0;
        for (int t = 0; t < 4; ++t) {
          _mm256_maskstore_ps(crow + 8 * t, mask[t], acc[r][t]);
        }
      }
    }
    for (; i < i1; ++i) {
      const float* arow = a + static_cast<size_t>(i) * k;
      __m256 acc[4];
      for (int t = 0; t < 4; ++t) acc[t] = _mm256_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const __m256 avv = _mm256_set1_ps(av);
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        for (int t = 0; t < 4; ++t) {
          const __m256 bv = _mm256_maskload_ps(brow + 8 * t, mask[t]);
          acc[t] = _mm256_add_ps(acc[t], _mm256_mul_ps(avv, bv));
        }
      }
      float* crow = c + static_cast<size_t>(i) * n + j0;
      for (int t = 0; t < 4; ++t) {
        _mm256_maskstore_ps(crow + 8 * t, mask[t], acc[t]);
      }
    }
  }
}

__attribute__((target("avx2"))) void MatMulTransposeAAvx2Rows(
    const float* a, const float* b, float* c, int m, int k, int n, int i0,
    int i1) {
  for (int j0 = 0; j0 < n; j0 += 32) {
    __m256i mask[4];
    for (int t = 0; t < 4; ++t) {
      int live = n - (j0 + 8 * t);
      live = live < 0 ? 0 : (live > 8 ? 8 : live);
      mask[t] = LaneMaskAvx2(live);
    }
    int i = i0;
    for (; i + 2 <= i1; i += 2) {
      __m256 acc[2][4];
      for (int r = 0; r < 2; ++r) {
        for (int t = 0; t < 4; ++t) acc[r][t] = _mm256_setzero_ps();
      }
      for (int p = 0; p < k; ++p) {
        const float* ap = a + static_cast<size_t>(p) * m + i;
        const float v0 = ap[0], v1 = ap[1];
        if (v0 == 0.0f && v1 == 0.0f) continue;
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        const __m256 w0 = _mm256_set1_ps(v0);
        const __m256 w1 = _mm256_set1_ps(v1);
        for (int t = 0; t < 4; ++t) {
          const __m256 bv = _mm256_maskload_ps(brow + 8 * t, mask[t]);
          acc[0][t] = _mm256_add_ps(acc[0][t], _mm256_mul_ps(w0, bv));
          acc[1][t] = _mm256_add_ps(acc[1][t], _mm256_mul_ps(w1, bv));
        }
      }
      for (int r = 0; r < 2; ++r) {
        float* crow = c + static_cast<size_t>(i + r) * n + j0;
        for (int t = 0; t < 4; ++t) {
          _mm256_maskstore_ps(crow + 8 * t, mask[t], acc[r][t]);
        }
      }
    }
    for (; i < i1; ++i) {
      const float* acol = a + i;
      __m256 acc[4];
      for (int t = 0; t < 4; ++t) acc[t] = _mm256_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const float av = acol[static_cast<size_t>(p) * m];
        if (av == 0.0f) continue;
        const __m256 avv = _mm256_set1_ps(av);
        const float* brow = b + static_cast<size_t>(p) * n + j0;
        for (int t = 0; t < 4; ++t) {
          const __m256 bv = _mm256_maskload_ps(brow + 8 * t, mask[t]);
          acc[t] = _mm256_add_ps(acc[t], _mm256_mul_ps(avv, bv));
        }
      }
      float* crow = c + static_cast<size_t>(i) * n + j0;
      for (int t = 0; t < 4; ++t) {
        _mm256_maskstore_ps(crow + 8 * t, mask[t], acc[t]);
      }
    }
  }
}

__attribute__((target("avx2"))) void MatMulTransposeBAvx2Cols(
    const float* a, const float* b, float* c, int m, int k, int n, int jb,
    int je) {
  // 8-column transposed pack of b, then 4-row sweeps with one ymm
  // accumulator chain per row; lane j accumulates its dot product in
  // ascending-p order, matching the scalar kernel bit-for-bit.
  std::vector<float> bt(static_cast<size_t>(k) * 8);
  for (int j0 = jb; j0 < je; j0 += 8) {
    const int jw = je - j0 < 8 ? je - j0 : 8;
    const __m256i mask = LaneMaskAvx2(jw);
    for (int p = 0; p < k; ++p) {
      float* row = bt.data() + static_cast<size_t>(p) * 8;
      for (int t = 0; t < jw; ++t) {
        row[t] = b[static_cast<size_t>(j0 + t) * k + p];
      }
      for (int t = jw; t < 8; ++t) row[t] = 0.0f;
    }
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + static_cast<size_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const __m256 bv =
            _mm256_loadu_ps(bt.data() + static_cast<size_t>(p) * 8);
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(a0[p]), bv));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(a1[p]), bv));
        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(a2[p]), bv));
        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(a3[p]), bv));
      }
      _mm256_maskstore_ps(c + static_cast<size_t>(i) * n + j0, mask, acc0);
      _mm256_maskstore_ps(c + static_cast<size_t>(i + 1) * n + j0, mask, acc1);
      _mm256_maskstore_ps(c + static_cast<size_t>(i + 2) * n + j0, mask, acc2);
      _mm256_maskstore_ps(c + static_cast<size_t>(i + 3) * n + j0, mask, acc3);
    }
    for (; i < m; ++i) {
      const float* a0 = a + static_cast<size_t>(i) * k;
      __m256 acc = _mm256_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const __m256 bv =
            _mm256_loadu_ps(bt.data() + static_cast<size_t>(p) * 8);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a0[p]), bv));
      }
      _mm256_maskstore_ps(c + static_cast<size_t>(i) * n + j0, mask, acc);
    }
  }
}

}  // namespace

#pragma GCC diagnostic pop

#endif  // BLAZEIT_X86_64

// ---------------------------------------------------------------------------
// Dispatchers: pick the widest available ISA tier, then shard the range
// across the exec pool when the GEMM is big enough to pay for it.
// ---------------------------------------------------------------------------

namespace {

/// Runs `range_fn(r0, r1)` over [0, span) — sharded (always, for
/// decomposition stability) when the problem is large, single-range
/// otherwise. One gate for all three dispatchers so the sharding policy
/// can never drift between them.
template <typename RangeFn>
void DispatchRange(int m, int k, int n, int span, int shard,
                   const RangeFn& range_fn) {
  if (!WorthSharding(m, k, n, span, shard)) {
    range_fn(0, span);
    return;
  }
  exec::ParallelFor(span, shard,
                    [&](int64_t begin, int64_t end, int /*slot*/) {
                      range_fn(static_cast<int>(begin),
                               static_cast<int>(end));
                    });
}

}  // namespace

void MatMul(const float* a, const float* b, float* c, int m, int k, int n) {
  DispatchRange(m, k, n, m, kRowShard, [&](int i0, int i1) {
#ifdef BLAZEIT_X86_64
    if (CpuHasAvx512()) {
      MatMulAvx512Rows(a, b, c, k, n, i0, i1);
      return;
    }
    if (CpuHasAvx2()) {
      MatMulAvx2Rows(a, b, c, k, n, i0, i1);
      return;
    }
#endif
    MatMulScalarRows(a, b, c, k, n, i0, i1);
  });
}

void MatMulTransposeA(const float* a, const float* b, float* c, int m, int k,
                      int n) {
  DispatchRange(m, k, n, m, kRowShard, [&](int i0, int i1) {
#ifdef BLAZEIT_X86_64
    if (CpuHasAvx512()) {
      MatMulTransposeAAvx512Rows(a, b, c, m, k, n, i0, i1);
      return;
    }
    if (CpuHasAvx2()) {
      MatMulTransposeAAvx2Rows(a, b, c, m, k, n, i0, i1);
      return;
    }
#endif
    MatMulTransposeAScalarRows(a, b, c, m, k, n, i0, i1);
  });
}

void MatMulTransposeB(const float* a, const float* b, float* c, int m, int k,
                      int n) {
  // Sharded over *columns*: each column group packs its own transposed
  // tile of b, so column shards duplicate no packing work (row shards
  // would re-pack every tile per shard).
  DispatchRange(m, k, n, n, kColShard, [&](int j0, int j1) {
#ifdef BLAZEIT_X86_64
    if (CpuHasAvx512()) {
      MatMulTransposeBAvx512Cols(a, b, c, m, k, n, j0, j1);
      return;
    }
    if (CpuHasAvx2()) {
      MatMulTransposeBAvx2Cols(a, b, c, m, k, n, j0, j1);
      return;
    }
#endif
    MatMulTransposeBScalarCols(a, b, c, m, k, n, j0, j1);
  });
}

}  // namespace matmul
}  // namespace blazeit
