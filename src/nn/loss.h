#ifndef BLAZEIT_NN_LOSS_H_
#define BLAZEIT_NN_LOSS_H_

#include <vector>

#include "nn/tensor.h"

namespace blazeit {

/// Row-wise softmax with the max-subtraction trick.
Matrix Softmax(const Matrix& logits);

/// Softmax cross-entropy over a batch; the standard training loss of the
/// paper's specialized NNs (Section 9).
class SoftmaxCrossEntropy {
 public:
  /// Computes mean loss over the batch; `labels.size()` must equal
  /// `logits.rows()` and every label must be in [0, logits.cols()).
  double Forward(const Matrix& logits, const std::vector<int>& labels);

  /// Gradient of the mean loss w.r.t. the logits: (softmax - onehot) / n.
  Matrix Backward() const;

  /// Softmax probabilities from the last Forward call.
  const Matrix& probs() const { return probs_; }

 private:
  Matrix probs_;
  std::vector<int> labels_;
};

}  // namespace blazeit

#endif  // BLAZEIT_NN_LOSS_H_
