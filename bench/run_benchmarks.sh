#!/usr/bin/env bash
# Runs the google-benchmark micro-benchmarks and writes a JSON report, the
# recorded baseline the ROADMAP asks for before any hot-path optimization.
#
#   bench/run_benchmarks.sh [build-dir] [output.json]
#
# Defaults: build dir `build`, output `bench/BENCH_baseline.json` — i.e.
# running it with no arguments refreshes the committed baseline. Compare a
# new run against the baseline with google-benchmark's tools/compare.py, or
# just diff the real_time fields.
#
# The paper-figure harnesses (bench_fig*, bench_table*) print their tables
# to stdout and are not part of the JSON report; run them directly.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${2:-bench/BENCH_baseline.json}"
BIN="${BUILD_DIR}/bench/bench_micro_components"

if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not built (needs google-benchmark; configure + build first)" >&2
  exit 1
fi

# benchmark_min_time trades precision for runtime; 0.5s/benchmark keeps the
# whole sweep under a minute while stabilizing the fast timers.
"${BIN}" \
  --benchmark_format=json \
  --benchmark_min_time=0.5 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  > "${OUT}"

echo "wrote ${OUT}"
