#!/usr/bin/env bash
# Runs the google-benchmark micro-benchmarks and writes a JSON report, the
# recorded baseline the ROADMAP asks for before any hot-path optimization.
#
#   bench/run_benchmarks.sh [--threads N] [build-dir] [output.json]
#   bench/run_benchmarks.sh compare [--threads N] [build-dir] [output.json] \
#       [baseline.json]
#
# --threads N pins BLAZEIT_THREADS for the run, sizing the exec pool every
# pool-aware bench inherits by default (the BM_*Threads benches sweep
# their own explicit 1/2/4/8 axis regardless). Unset, the pool sizes
# itself to the machine.
#
# Defaults: build dir `build`, output `bench/BENCH_baseline.json` — i.e.
# running it with no arguments refreshes the committed baseline.
#
# `compare` mode writes the fresh run to output.json (default
# `bench/BENCH_current.json`, gitignored — pass an explicit path like
# `bench/BENCH_pr3.json` to record a PR snapshot) and then diffs it
# against the committed baseline
# (default `bench/BENCH_baseline.json`), printing per-bench deltas and
# speedups via bench/compare_benchmarks.py. The diff is a report, not a
# gate; ci/check.sh runs it non-gating so the perf trajectory is visible
# on every CI run.
#
# The paper-figure harnesses (bench_fig*, bench_table*) print their tables
# to stdout and are not part of the JSON report; run them directly.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="run"
if [[ "${1:-}" == "compare" ]]; then
  MODE="compare"
  shift
fi

if [[ "${1:-}" == "--threads" ]]; then
  export BLAZEIT_THREADS="${2:?--threads needs a value}"
  shift 2
fi

BUILD_DIR="${1:-build}"
if [[ "${MODE}" == "compare" ]]; then
  OUT="${2:-bench/BENCH_current.json}"
  BASELINE="${3:-bench/BENCH_baseline.json}"
else
  OUT="${2:-bench/BENCH_baseline.json}"
fi
BIN="${BUILD_DIR}/bench/bench_micro_components"

if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not built (needs google-benchmark; configure + build first)" >&2
  exit 1
fi

# benchmark_min_time trades precision for runtime; 0.5s/benchmark keeps the
# whole sweep under a minute while stabilizing the fast timers.
"${BIN}" \
  --benchmark_format=json \
  --benchmark_min_time=0.5 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  > "${OUT}"

echo "wrote ${OUT}"

if [[ "${MODE}" == "compare" ]]; then
  if [[ ! -f "${BASELINE}" ]]; then
    echo "warning: baseline ${BASELINE} not found; skipping diff" >&2
    exit 0
  fi
  # BLAZEIT_BENCH_FAIL_PCT turns the diff into a gate: exit 1 when any
  # shared bench regresses more than that percentage (ci/check.sh sets it
  # but treats the failure as non-gating; see compare_benchmarks.py).
  COMPARE_ARGS=()
  if [[ -n "${BLAZEIT_BENCH_FAIL_PCT:-}" ]]; then
    COMPARE_ARGS+=(--fail-on-regression "${BLAZEIT_BENCH_FAIL_PCT}")
  fi
  python3 bench/compare_benchmarks.py \
    ${COMPARE_ARGS[@]+"${COMPARE_ARGS[@]}"} "${BASELINE}" "${OUT}"
fi
