#ifndef BLAZEIT_BENCH_BENCH_COMMON_H_
#define BLAZEIT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/engine.h"
#include "util/logging.h"
#include "video/datasets.h"

namespace blazeit {
namespace bench {

/// Paper-scale day lengths, scaled down per DESIGN.md: one hour of 30 fps
/// test video (the paper uses 24-33h); training and threshold days of 20
/// minutes each. All speedup factors are length-invariant.
inline DayLengths PaperDays() {
  DayLengths lengths;
  lengths.train = 36000;
  lengths.held_out = 36000;
  lengths.test = 108000;
  return lengths;
}

/// Builds a catalog with the given streams (all six when empty). When
/// BLAZEIT_DETECTION_STORE is set, the catalog reads/writes the persistent
/// store there, so repeated bench runs replay precomputed detections and NN
/// artifacts from disk. Reported (simulated) runtimes are identical warm or
/// cold — only harness wall-clock changes.
inline VideoCatalog BuildCatalog(std::vector<std::string> names = {},
                                 DayLengths lengths = PaperDays()) {
  Logger::set_level(LogLevel::kWarning);
  VideoCatalog catalog;
  if (const char* store_dir = std::getenv("BLAZEIT_DETECTION_STORE")) {
    Status st = catalog.EnableDetectionStore(store_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "EnableDetectionStore(%s): %s\n", store_dir,
                   st.ToString().c_str());
      std::abort();
    }
  }
  if (names.empty()) {
    for (const StreamConfig& cfg : AllStreamConfigs()) {
      names.push_back(cfg.name);
    }
  }
  for (const std::string& name : names) {
    auto cfg = StreamConfigByName(name);
    if (!cfg.ok()) {
      std::fprintf(stderr, "unknown stream %s\n", name.c_str());
      std::abort();
    }
    Status st = catalog.AddStream(cfg.value(), lengths);
    if (!st.ok()) {
      std::fprintf(stderr, "AddStream(%s): %s\n", name.c_str(),
                   st.ToString().c_str());
      std::abort();
    }
  }
  return catalog;
}

/// Prints a separator + title, matching the other harness binaries.
inline void PrintHeader(const std::string& title) {
  std::printf("\n==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================\n");
}

/// Directory for per-query ExecutionReport dumps, from the
/// BLAZEIT_REPORT_DIR environment variable; empty when dumping is off.
/// Harnesses that drive BlazeItEngine should turn on
/// EngineOptions::collect_reports when this is non-empty and hand each
/// QueryOutput to DumpReport — reporting only observes, so bench numbers
/// (simulated costs) are unchanged either way.
inline std::string ReportDir() {
  const char* dir = std::getenv("BLAZEIT_REPORT_DIR");
  return dir != nullptr ? dir : "";
}

/// Writes `<ReportDir()>/<label>.report.json` from the query's attached
/// ExecutionReport. No-op when BLAZEIT_REPORT_DIR is unset; warns (rather
/// than aborting a long bench run) when a dump was requested but the
/// harness ran without collect_reports or the write fails.
inline void DumpReport(const std::string& label, const QueryOutput& out) {
  const std::string dir = ReportDir();
  if (dir.empty()) return;
  if (out.report == nullptr) {
    std::fprintf(stderr,
                 "BLAZEIT_REPORT_DIR set but %s has no report "
                 "(EngineOptions::collect_reports off?)\n",
                 label.c_str());
    return;
  }
  const std::string path = dir + "/" + label + ".report.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "DumpReport: cannot open %s\n", path.c_str());
    return;
  }
  const std::string json = out.report->ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

/// Pretty "Nx" speedup formatting used in the runtime tables.
inline std::string Speedup(double baseline_seconds, double method_seconds) {
  if (method_seconds <= 0) return "inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx",
                baseline_seconds / method_seconds);
  return buf;
}

}  // namespace bench
}  // namespace blazeit

#endif  // BLAZEIT_BENCH_BENCH_COMMON_H_
