// Reproduces Figure 7: sample complexity (object-detection calls) of
// Naive / NoScope-oracle / BlazeIt when scrubbing for at least N cars in
// taipei, N = 1..6, LIMIT 10.
#include <cstdio>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/scrubbing.h"

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog({"taipei"});
  StreamData* s = catalog.GetStream("taipei").value();
  PrintHeader(
      "Figure 7: sample complexity vs N when searching for >= N cars in "
      "taipei (LIMIT 10, detection calls)");
  std::printf("%-4s %9s %9s %10s %10s %10s\n", "N", "Frames", "Events",
              "Naive", "NoScope", "BlazeIt");
  for (int n = 1; n <= 6; ++n) {
    std::vector<ClassCountRequirement> reqs = {{kCar, n}};
    auto stats = CountRequirementInstances(*s, reqs);
    auto naive = NaiveScrub(s, reqs, 10, 0);
    auto oracle = NoScopeOracleScrub(s, reqs, 10, 0);
    ScrubbingExecutor ex(s, {});
    auto r = ex.Run(reqs, 10, 0).value();
    std::printf("%-4d %9lld %9lld %10lld %10lld %10lld%s\n", n,
                static_cast<long long>(stats.matching_frames),
                static_cast<long long>(stats.events),
                static_cast<long long>(naive.detection_calls),
                static_cast<long long>(oracle.detection_calls),
                static_cast<long long>(r.detection_calls),
                r.limit_satisfied
                    ? ""
                    : (r.scan_exhausted ? " (exhausted)" : " (incomplete)"));
  }
  std::printf(
      "\nShape check (paper): naive/NoScope complexity grows steeply with "
      "N; BlazeIt stays near-flat until events become extremely rare.\n");
  return 0;
}
