// Reproduces Table 5: specialized NNs do not just learn the average. We
// train on the training day and evaluate the predicted vs actual mean count
// on two different unseen days (the threshold day and the test day); the
// predictions must track the per-day truth, not a constant.
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "nn/specialized_nn.h"

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog(
      {"taipei", "night-street", "rialto", "grand-canal"});
  PrintHeader(
      "Table 5: predicted vs actual mean counts on two unseen days "
      "(specialized NNs do not learn the average)");
  std::printf("%-14s %-6s %12s %12s %12s %12s\n", "Video", "Obj",
              "Pred(day1)", "Actual(day1)", "Pred(day2)", "Actual(day2)");

  struct Row {
    const char* stream;
    int class_id;
  };
  const Row rows[] = {{"taipei", kCar},
                      {"night-street", kCar},
                      {"rialto", kBoat},
                      {"grand-canal", kBoat}};
  for (const Row& row : rows) {
    StreamData* s = catalog.GetStream(row.stream).value();
    SpecializedNNConfig cfg;
    auto nn = SpecializedNN::Train(
                  *s->train_day, {s->train_labels->Counts(row.class_id)}, cfg)
                  .value();
    auto eval = [&](const SyntheticVideo& day, const LabeledSet& labels) {
      std::vector<int64_t> frames(static_cast<size_t>(day.num_frames()));
      std::iota(frames.begin(), frames.end(), 0);
      std::vector<float> pred = nn.ExpectedCountsForFrames(day, frames);
      double pmean = 0, tmean = 0;
      const auto& truth = labels.Counts(row.class_id);
      for (size_t i = 0; i < pred.size(); ++i) {
        pmean += pred[i];
        tmean += truth[i];
      }
      return std::pair<double, double>(pmean / pred.size(),
                                       tmean / pred.size());
    };
    auto [p1, a1] = eval(*s->held_out_day, *s->held_out_labels);
    auto [p2, a2] = eval(*s->test_day, *s->test_labels);
    std::printf("%-14s %-6s %12.2f %12.2f %12.2f %12.2f\n", row.stream,
                ClassName(row.class_id), p1, a1, p2, a2);
  }
  std::printf(
      "\nPredictions follow each day's actual mean (the two days differ), "
      "so the NNs respond to content rather than memorizing a prior.\n");
  return 0;
}
