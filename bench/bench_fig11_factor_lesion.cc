// Reproduces Figure 11: factor analysis (adding filters one at a time) and
// lesion study (removing each filter class) of BlazeIt's selection filters
// on the red-bus query. Throughput is frames of video per simulated second.
#include <cstdio>

#include "bench_common.h"
#include "core/selection.h"
#include "frameql/parser.h"

namespace {

struct Variant {
  const char* label;
  bool spatial, temporal, content, label_nn;
};

}  // namespace

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog({"taipei"});
  StreamData* s = catalog.GetStream("taipei").value();
  UdfRegistry udfs;
  PrintHeader(
      "Figure 11: factor analysis and lesion study of the selection "
      "filters (red-bus query; throughput in frames per simulated second)");

  auto parsed = ParseFrameQL(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND redness(content) >= 0.25 AND area(mask) > 20000 "
      "AND xmin(mask) >= 0.4 AND ymin(mask) >= 0.5 "
      "GROUP BY trackid HAVING COUNT(*) > 15");
  auto query = AnalyzeQuery(parsed.value(), s->config).value();
  const double frames = static_cast<double>(s->test_day->num_frames());

  auto run = [&](const Variant& v) {
    SelectionOptions opt;
    opt.use_spatial_filter = v.spatial;
    opt.use_temporal_filter = v.temporal;
    opt.use_content_filter = v.content;
    opt.use_label_filter = v.label_nn;
    SelectionExecutor ex(s, &udfs, opt);
    return ex.Run(query).value().cost.TotalSeconds();
  };

  const Variant factor[] = {
      {"Naive", false, false, false, false},
      {"+Spatial", true, false, false, false},
      {"+Temporal", true, true, false, false},
      {"+Content", true, true, true, false},
      {"+Label", true, true, true, true},
  };
  double naive_sec = 0;
  std::printf("Factor analysis (filters added one at a time):\n");
  std::printf("  %-12s %12s %14s %10s\n", "Variant", "Seconds",
              "Thru(fps)", "Speedup");
  for (const Variant& v : factor) {
    double sec = run(v);
    if (naive_sec == 0) naive_sec = sec;
    std::printf("  %-12s %11.0fs %14.1f %10s\n", v.label, sec, frames / sec,
                Speedup(naive_sec, sec).c_str());
  }

  const Variant lesion[] = {
      {"Combined", true, true, true, true},
      {"-Spatial", false, true, true, true},
      {"-Temporal", true, false, true, true},
      {"-Content", true, true, false, true},
      {"-Label", true, true, true, false},
  };
  std::printf("\nLesion study (each filter class removed individually):\n");
  std::printf("  %-12s %12s %14s %12s\n", "Variant", "Seconds", "Thru(fps)",
              "vs combined");
  double combined_sec = 0;
  for (const Variant& v : lesion) {
    double sec = run(v);
    if (combined_sec == 0) combined_sec = sec;
    std::printf("  %-12s %11.0fs %14.1f %11.2fx\n", v.label, sec,
                frames / sec, sec / combined_sec);
  }
  std::printf(
      "\nShape check (paper): every filter contributes in the factor "
      "analysis, and removing any class slows the combined plan.\n");
  return 0;
}
