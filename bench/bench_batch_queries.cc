// BM_BatchedQueries: multi-query batch execution with shared NN sweeps.
// Runs a serving-style batch of same-stream queries twice — serially via
// Execute, then via ExecuteBatch — and reports the shared-sweep savings:
// per-query standalone vs batch simulated seconds, how many specialized-NN
// frame inferences and trainings were served from another query's sweep,
// and the wall-clock of both paths. The per-query outputs (answers,
// frames, rows, simulated costs) are bit-identical between the two paths
// (asserted continuously by tests/batch_determinism_test.cc); only the
// batch-level accounting shows the dedup.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/engine.h"
#include "core/query_session.h"

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  using Clock = std::chrono::steady_clock;

  // 20-minute test day: big enough that NN sweeps dominate, small enough
  // to run the serial baseline in minutes on one core.
  DayLengths lengths;
  lengths.train = 12000;
  lengths.held_out = 12000;
  lengths.test = 36000;
  VideoCatalog catalog = BuildCatalog({"taipei"}, lengths);
  EngineOptions opt;
  // With BLAZEIT_REPORT_DIR set, attach EXPLAIN-style ExecutionReports and
  // dump one per batched query; reporting only observes, so the simulated
  // costs below are unchanged.
  opt.collect_reports = !ReportDir().empty();
  BlazeItEngine engine(&catalog, opt);
  PrintHeader(
      "BM_BatchedQueries: N same-stream queries, shared specialized-NN "
      "sweeps (simulated seconds)");

  const std::vector<std::string> queries = {
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.1 AT CONFIDENCE 95%",
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.05 AT CONFIDENCE 95%",
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.01 AT CONFIDENCE 95%",
      "SELECT COUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1",
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='car') >= 2 LIMIT 10 GAP 300",
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='car') >= 2 LIMIT 25 GAP 100",
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND redness(content) >= 0.25 AND area(mask) > 20000 "
      "GROUP BY trackid HAVING COUNT(*) > 15",
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "FNR WITHIN 0.01 FPR WITHIN 0.01",
  };

  // Serial baseline: one Execute per query, nothing shared.
  auto serial_start = Clock::now();
  double serial_total = 0.0;
  for (const std::string& q : queries) {
    auto out = engine.Execute(q);
    if (!out.ok()) {
      std::fprintf(stderr, "Execute failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    serial_total += out.value().cost.TotalSeconds();
  }
  const double serial_wall =
      std::chrono::duration<double>(Clock::now() - serial_start).count();

  // Batched: shared-plan groups, one NN sweep per group.
  auto batch_start = Clock::now();
  auto batch = engine.ExecuteBatch(queries);
  const double batch_wall =
      std::chrono::duration<double>(Clock::now() - batch_start).count();
  if (!batch.ok()) {
    std::fprintf(stderr, "ExecuteBatch failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  const BatchOutput& out = batch.value();

  std::printf("%-5s %-6s %12s %12s %12s %8s\n", "query", "group",
              "standalone", "batched", "sharedNNfr", "sharedNN");
  int64_t shared_frames = 0, shared_models = 0;
  int64_t nn_frames_charged = 0, trainings_charged = 0;
  double nn_bill_standalone = 0.0, nn_bill_batched = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const BatchQueryStats& qs = out.stats[i];
    const CostMeter& cost = out.results[i].value().cost;
    std::printf("%-5zu %-6lld %11.1fs %11.1fs %12lld %8s\n", i,
                static_cast<long long>(qs.group), qs.standalone_seconds,
                qs.batch_seconds,
                static_cast<long long>(qs.shared_nn_frames),
                qs.shared_models > 0 ? "reused" : "trained");
    shared_frames += qs.shared_nn_frames;
    shared_models += qs.shared_models;
    DumpReport("batch_q" + std::to_string(i), out.results[i].value());
    nn_frames_charged += cost.specialized_nn_calls();
    if (cost.training_frames() > 0) ++trainings_charged;
    const double nn_bill =
        cost.specialized_nn_seconds() + cost.training_seconds();
    nn_bill_standalone += nn_bill;
    // Per-query (standalone - batched) is exactly the NN/filter work the
    // shared sweeps absorbed for this query.
    nn_bill_batched += nn_bill - (qs.standalone_seconds - qs.batch_seconds);
  }
  std::printf(
      "\n%zu queries in %lld shared-plan groups\n"
      "specialized-NN frame inferences: charged %lld, computed %lld "
      "(%lld served by shared sweeps)\n"
      "NN trainings: charged %lld, computed %lld (%lld models reused)\n"
      "simulated NN+training bill: standalone %.1fs -> batched %.1fs "
      "(%s, %.1f%% deduplicated)\n"
      "simulated total: %.1fs standalone -> %.1fs batched\n"
      "wall-clock: serial %.1fs -> batched %.1fs (%s)\n",
      queries.size(), static_cast<long long>(out.groups),
      static_cast<long long>(nn_frames_charged),
      static_cast<long long>(nn_frames_charged - shared_frames),
      static_cast<long long>(shared_frames),
      static_cast<long long>(trainings_charged),
      static_cast<long long>(trainings_charged - shared_models),
      static_cast<long long>(shared_models), nn_bill_standalone,
      nn_bill_batched, Speedup(nn_bill_standalone, nn_bill_batched).c_str(),
      nn_bill_standalone > 0
          ? 100.0 * (nn_bill_standalone - nn_bill_batched) /
                nn_bill_standalone
          : 0.0,
      serial_total, out.batch_seconds, serial_wall, batch_wall,
      Speedup(serial_wall, batch_wall).c_str());
  std::printf(
      "(simulated standalone totals are identical serial vs batched by the "
      "determinism contract; wall-clock reflects in-process/NN-store "
      "reuse)\n");
  return 0;
}
