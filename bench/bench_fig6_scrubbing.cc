// Reproduces Figure 6 and Table 6: end-to-end runtime of single-class
// scrubbing queries (LIMIT 10, GAP 300) under Naive / NoScope-oracle /
// BlazeIt / BlazeIt (indexed), plus the per-query instance counts.
#include <cstdio>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/scrubbing.h"

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog();
  PrintHeader(
      "Figure 6 / Table 6: scrubbing queries, LIMIT 10 GAP 300 "
      "(simulated seconds; speedups vs naive)");

  struct Row {
    const char* stream;
    int class_id;
    int paper_n;  // Table 6's queried count
  };
  const Row rows[] = {{"taipei", kCar, 6},      {"night-street", kCar, 5},
                      {"rialto", kBoat, 7},     {"grand-canal", kBoat, 5},
                      {"amsterdam", kCar, 4},   {"archie", kCar, 4}};

  // Events that the GAP constraint can actually separate: greedy count of
  // matching frames at least `gap` apart.
  auto gap_separated_events = [](StreamData* s,
                                 const std::vector<ClassCountRequirement>&
                                     reqs,
                                 int64_t gap) {
    int64_t count = 0, last = -gap - 1;
    for (int64_t t = 0; t < s->test_day->num_frames(); ++t) {
      if (t - last < gap) continue;
      if (SatisfiesRequirements(*s, t, reqs)) {
        ++count;
        last = t;
      }
    }
    return count;
  };

  std::printf("%-14s %-10s %9s %9s %10s %10s %10s %12s %6s\n", "Video",
              "Query", "Frames", "Events", "Naive", "NoScope", "BlazeIt",
              "BlazeIt(ix)", "Found");
  for (const Row& row : rows) {
    StreamData* s = catalog.GetStream(row.stream).value();
    // The paper chose counts with >= 10 events in its (much longer) test
    // days; on our 1h days, lower N until at least 12 GAP-separable
    // events exist (otherwise every method exhausts the video).
    int n = row.paper_n;
    RequirementStats stats;
    while (n > 1) {
      stats = CountRequirementInstances(*s, {{row.class_id, n}});
      if (stats.events >= 12 &&
          gap_separated_events(s, {{row.class_id, n}}, 300) >= 12) {
        break;
      }
      --n;
    }
    std::vector<ClassCountRequirement> reqs = {{row.class_id, n}};
    auto naive = NaiveScrub(s, reqs, 10, 300);
    auto oracle = NoScopeOracleScrub(s, reqs, 10, 300);
    ScrubbingExecutor ex(s, {});
    auto r = ex.Run(reqs, 10, 300).value();
    std::printf("%-14s >=%d %-4s %9lld %9lld %9.0fs %9.0fs %9.0fs %11.0fs %6zu\n",
                row.stream, n, ClassName(row.class_id),
                static_cast<long long>(stats.matching_frames),
                static_cast<long long>(stats.events),
                naive.cost.TotalSeconds(), oracle.cost.TotalSeconds(),
                r.cost.TotalSeconds(), r.indexed_seconds, r.frames.size());
    std::printf("%-25s %29s %10s %10s %12s\n", "  speedup vs naive:", "1.0x",
                Speedup(naive.cost.TotalSeconds(),
                        oracle.cost.TotalSeconds())
                    .c_str(),
                Speedup(naive.cost.TotalSeconds(), r.cost.TotalSeconds())
                    .c_str(),
                Speedup(naive.cost.TotalSeconds(), r.indexed_seconds)
                    .c_str());
  }
  return 0;
}
