#!/usr/bin/env python3
"""Diffs two google-benchmark JSON reports and prints per-bench deltas.

Usage: compare_benchmarks.py [--fail-on-regression PCT] BASELINE.json NEW.json

Compares the `_mean` aggregate of every benchmark (falling back to the raw
entry when a report was produced without repetitions) and prints baseline
time, new time, delta, and speedup. The table covers the *union* of
benchmark names: a bench present in only one report shows up with a `new`
or `missing` marker in the delta column instead of being dropped or
printed as nan, so renames and additions are visible inline.

By default exit code is 0 — a report, not a gate. With
--fail-on-regression PCT, exits 1 when any shared benchmark's new time
exceeds its baseline by more than PCT percent (missing/new benches never
trip the gate; see ci/check.sh, which runs this mode non-gating).
"""
import argparse
import json
import sys


def to_ns(value, unit):
    return value * {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)


def load_means(path):
    """Returns {run_name: real_time_ns}, normalizing each entry's unit."""
    with open(path) as f:
        report = json.load(f)
    means = {}
    raw = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        ns = to_ns(bench.get("real_time", 0.0), bench.get("time_unit", "ns"))
        if bench.get("aggregate_name") == "mean" and name.endswith("_mean"):
            means[bench["run_name"]] = ns
        elif "aggregate_name" not in bench:
            raw[name] = ns
    # Prefer aggregate means; fall back to raw single-run entries.
    for name, value in raw.items():
        means.setdefault(name, value)
    return means


def fmt_time(ns):
    if ns is None:
        return f"{'-':>13}"
    if ns >= 1e6:
        return f"{ns / 1e6:10.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:10.2f} us"
    return f"{ns:10.0f} ns"


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--fail-on-regression",
        type=float,
        metavar="PCT",
        default=None,
        help="exit 1 when any shared bench slows down by more than PCT%%",
    )
    parser.add_argument("baseline")
    parser.add_argument("new")
    args = parser.parse_args()

    base = load_means(args.baseline)
    new = load_means(args.new)
    # Union, baseline order first, then additions in new-report order.
    names = list(base) + [n for n in new if n not in base]
    if not names:
        print("no benchmarks in either report")
        return 0
    width = max(len(n) for n in names)
    print(f"{'benchmark':<{width}}  {'baseline':>13}  {'new':>13}  "
          f"{'delta':>8}  {'speedup':>7}")
    regressions = []
    for name in names:
        b = base.get(name)
        n = new.get(name)
        if b is None:
            delta, speedup = f"{'new':>8}", f"{'-':>7}"
        elif n is None:
            delta, speedup = f"{'missing':>8}", f"{'-':>7}"
        else:
            pct = (n - b) / b * 100.0 if b else 0.0
            delta = f"{pct:+7.1f}%"
            speedup = f"{b / n:6.2f}x" if n else f"{'inf':>7}"
            if (args.fail_on_regression is not None
                    and pct > args.fail_on_regression):
                regressions.append((name, pct))
        print(f"{name:<{width}}  {fmt_time(b)}  {fmt_time(n)}  "
              f"{delta}  {speedup}")
    if regressions:
        limit = args.fail_on_regression
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
              f"than {limit:g}%:", file=sys.stderr)
        for name, pct in regressions:
            print(f"  {name}: {pct:+.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
