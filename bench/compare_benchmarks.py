#!/usr/bin/env python3
"""Diffs two google-benchmark JSON reports and prints per-bench deltas.

Usage: compare_benchmarks.py BASELINE.json NEW.json

Compares the `_mean` aggregate of every benchmark present in both files
(falling back to the raw entry when a report was produced without
repetitions) and prints baseline time, new time, delta, and speedup.
Benchmarks present in only one file are listed separately so a renamed or
added bench is visible rather than silently dropped. Exit code is always 0
— this is a report, not a gate (see ci/check.sh).
"""
import json
import sys


def to_ns(value, unit):
    return value * {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)


def load_means(path):
    """Returns {run_name: real_time_ns}, normalizing each entry's unit."""
    with open(path) as f:
        report = json.load(f)
    means = {}
    raw = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        ns = to_ns(bench.get("real_time", 0.0), bench.get("time_unit", "ns"))
        if bench.get("aggregate_name") == "mean" and name.endswith("_mean"):
            means[bench["run_name"]] = ns
        elif "aggregate_name" not in bench:
            raw[name] = ns
    # Prefer aggregate means; fall back to raw single-run entries.
    for name, value in raw.items():
        means.setdefault(name, value)
    return means


def fmt_time(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:10.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:10.2f} us"
    return f"{ns:10.0f} ns"


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base = load_means(sys.argv[1])
    new = load_means(sys.argv[2])
    shared = [name for name in base if name in new]
    if not shared:
        print("no benchmarks in common between the two reports")
        return 0
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>13}  {'new':>13}  "
          f"{'delta':>8}  {'speedup':>7}")
    for name in shared:
        b = base[name]
        n = new[name]
        delta = (n - b) / b * 100.0 if b else float("nan")
        speedup = b / n if n else float("inf")
        print(f"{name:<{width}}  {fmt_time(b)}  {fmt_time(n)}  "
              f"{delta:+7.1f}%  {speedup:6.2f}x")
    for name in sorted(set(base) - set(new)):
        print(f"only in baseline: {name}")
    for name in sorted(set(new) - set(base)):
        print(f"only in new run:  {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
