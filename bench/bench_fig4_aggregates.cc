// Reproduces Figure 4 and Table 4: end-to-end runtime of aggregation
// queries (error 0.1 @ 95%) under Naive / NoScope-oracle / Naive AQP /
// BlazeIt / BlazeIt (no train), plus the absolute error of query rewriting.
// Runtimes are simulated GPU seconds from the cost model, exactly the
// paper's extrapolation methodology.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/aggregation.h"
#include "core/baselines.h"

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog();
  PrintHeader(
      "Figure 4 / Table 4: aggregate queries, ERROR WITHIN 0.1 AT "
      "CONFIDENCE 95% (simulated seconds; speedups vs naive)");
  std::printf("%-14s %-6s %10s %10s %10s %10s %12s %-16s %8s %8s\n",
              "Video", "Obj", "Naive", "NoScope", "AQP", "BlazeIt",
              "BlazeIt(nt)", "Method", "Error", "Bound");

  struct Row {
    const char* stream;
    int class_id;
  };
  // Figure 4 evaluates taipei, night-street, rialto, grand-canal,
  // amsterdam; archie is included here to show the optimizer's choice on
  // the hardest stream (the paper excludes it from rewriting).
  const Row rows[] = {{"taipei", kCar},      {"night-street", kCar},
                      {"rialto", kBoat},     {"grand-canal", kBoat},
                      {"amsterdam", kCar},   {"archie", kCar}};
  for (const Row& row : rows) {
    StreamData* s = catalog.GetStream(row.stream).value();
    auto naive = NaiveAggregate(s, row.class_id);
    auto oracle = NoScopeOracleAggregate(s, row.class_id);
    // Average three runs, as in the paper.
    double blazeit_sec = 0, blazeit_nt_sec = 0, aqp_sec = 0, err = 0;
    double bound = 0;
    AggregateMethod method = AggregateMethod::kPlainAqp;
    const int kRuns = 3;
    for (int run = 0; run < kRuns; ++run) {
      AggregateOptions opt;
      opt.seed = 1000 + static_cast<uint64_t>(run);
      AggregationExecutor ex(s, opt);
      auto r = ex.Run(row.class_id, 0.1, 0.95).value();
      blazeit_sec += r.cost.TotalSeconds() / kRuns;
      blazeit_nt_sec += r.cost.QuerySeconds() / kRuns;
      err += std::abs(r.estimate - naive.estimate) / kRuns;
      bound += r.nn_error_bound / kRuns;
      method = r.method;
      auto aqp = NaiveAqpAggregate(s, row.class_id, 0.1, 0.95,
                                   2000 + static_cast<uint64_t>(run))
                     .value();
      aqp_sec += aqp.cost.TotalSeconds() / kRuns;
    }
    std::printf(
        "%-14s %-6s %9.0fs %9.0fs %9.0fs %9.0fs %11.0fs %-16s %8.3f %8.3f\n",
        row.stream, ClassName(row.class_id), naive.cost.TotalSeconds(),
        oracle.cost.TotalSeconds(), aqp_sec, blazeit_sec, blazeit_nt_sec,
        AggregateMethodName(method), err, bound);
    std::printf(
        "%-21s %10s %10s %10s %10s %12s\n", "  speedup vs naive:",
        "1.0x",
        Speedup(naive.cost.TotalSeconds(), oracle.cost.TotalSeconds()).c_str(),
        Speedup(naive.cost.TotalSeconds(), aqp_sec).c_str(),
        Speedup(naive.cost.TotalSeconds(), blazeit_sec).c_str(),
        Speedup(naive.cost.TotalSeconds(), blazeit_nt_sec).c_str());
  }
  std::printf(
      "\nTable 4 analogue: 'Error' is |BlazeIt - exact|, averaged over 3 "
      "runs; all rewriting errors must stay within the 0.1 tolerance.\n");
  return 0;
}
