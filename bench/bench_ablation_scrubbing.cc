// Ablation bench for the two scrubbing design choices this implementation
// adds on top of the paper's algorithm (both called out in DESIGN.md /
// EXPERIMENTS.md):
//   1. confidence smoothing: moving-average the per-frame NN confidences
//      before ranking (events span many frames; per-frame error is ~iid);
//   2. conjunction mode: combine multi-head tail probabilities as the
//      paper's sum vs. the joint product.
#include <cstdio>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/scrubbing.h"

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog({"taipei"});
  StreamData* s = catalog.GetStream("taipei").value();
  PrintHeader(
      "Ablation: scrubbing design choices (taipei, LIMIT 10, detection "
      "calls; lower is better)");

  // Pick a single-class query with enough events.
  int n = 6;
  while (n > 1 &&
         CountRequirementInstances(*s, {{kCar, n}}).events < 12) {
    --n;
  }
  std::vector<ClassCountRequirement> single = {{kCar, n}};
  auto naive = NaiveScrub(s, single, 10, 300);
  std::printf("single-class query: >=%d cars (naive: %lld calls)\n", n,
              static_cast<long long>(naive.detection_calls));
  std::printf("  %-28s %12s\n", "variant", "det calls");
  for (int64_t smoothing : {0, 2, 8, 32}) {
    ScrubOptions opt;
    opt.confidence_smoothing = smoothing;
    ScrubbingExecutor ex(s, opt);
    auto r = ex.Run(single, 10, 300).value();
    std::printf("  smoothing half-width %-7lld %12lld\n",
                static_cast<long long>(smoothing),
                static_cast<long long>(r.detection_calls));
  }

  // Conjunction mode on the multi-class query.
  int m = 5;
  while (m > 1 && CountRequirementInstances(
                      *s, {{kBus, 1}, {kCar, m}})
                          .events < 12) {
    --m;
  }
  std::vector<ClassCountRequirement> multi = {{kBus, 1}, {kCar, m}};
  auto naive_multi = NaiveScrub(s, multi, 10, 300);
  std::printf("\nconjunctive query: >=1 bus AND >=%d cars (naive: %lld "
              "calls)\n",
              m, static_cast<long long>(naive_multi.detection_calls));
  std::printf("  %-28s %12s\n", "variant", "det calls");
  for (bool product : {false, true}) {
    ScrubOptions opt;
    opt.conjunctive_product = product;
    ScrubbingExecutor ex(s, opt);
    auto r = ex.Run(multi, 10, 300).value();
    std::printf("  %-28s %12lld\n",
                product ? "product (joint probability)"
                        : "sum (paper's formulation)",
                static_cast<long long>(r.detection_calls));
  }
  return 0;
}
