// Reproduces Figure 9: sample complexity as a function of the requested
// number of clips (LIMIT), for the bus-and-cars conjunction on taipei.
#include <cstdio>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/scrubbing.h"

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog({"taipei"});
  StreamData* s = catalog.GetStream("taipei").value();
  PrintHeader(
      "Figure 9: sample complexity vs LIMIT for >=1 bus AND >=N cars in "
      "taipei (detection calls)");

  int n = 5;
  RequirementStats stats;
  while (n > 1) {
    stats = CountRequirementInstances(*s, {{kBus, 1}, {kCar, n}});
    if (stats.events >= 25) break;
    --n;
  }
  std::vector<ClassCountRequirement> reqs = {{kBus, 1}, {kCar, n}};
  std::printf("query: >=1 bus AND >=%d cars (%lld events available)\n\n", n,
              static_cast<long long>(stats.events));

  // Train once; re-rank for every LIMIT by re-running (the executor's NN
  // seed is fixed so training is identical; detections replay via the
  // cache, so wall-clock stays low while charges remain per-run).
  std::printf("%-8s %12s %12s %12s\n", "LIMIT", "Naive", "NoScope",
              "BlazeIt");
  for (int64_t limit : {1, 5, 10, 15, 20, 25, 30}) {
    auto naive = NaiveScrub(s, reqs, limit, 0);
    auto oracle = NoScopeOracleScrub(s, reqs, limit, 0);
    ScrubbingExecutor ex(s, {});
    auto r = ex.Run(reqs, limit, 0).value();
    std::printf("%-8lld %12lld %12lld %12lld%s\n",
                static_cast<long long>(limit),
                static_cast<long long>(naive.detection_calls),
                static_cast<long long>(oracle.detection_calls),
                static_cast<long long>(r.detection_calls),
                r.found_all ? "" : " (exhausted)");
  }
  std::printf(
      "\nShape check (paper): BlazeIt's complexity stays orders of "
      "magnitude below the scans for small LIMITs and converges toward "
      "them as LIMIT approaches the number of available events.\n");
  return 0;
}
