// Reproduces Figure 9: sample complexity as a function of the requested
// number of clips (LIMIT), for the bus-and-cars conjunction on taipei.
//
// Section 2 adds the segment-sketch data-skipping sweep: the same limit
// query over 1x / 10x (and with `bench_fig9_limit_sweep 100`, 100x)
// longer synthetic test videos, indexed vs unindexed, asserting the
// returned frames are bit-identical while the charged NN/detector work
// drops. Longer videos dilute the fixed number of interesting segments,
// so the skipping win grows with length — the NeedleTail-style argument
// for a LIMIT index.
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/scrubbing.h"
#include "storage/segment_sketch.h"

namespace {

void RunSketchLengthSweep(int64_t max_scale) {
  using namespace blazeit;
  using namespace blazeit::bench;
  namespace fs = std::filesystem;
  PrintHeader(
      "Segment-sketch data skipping vs video length (scrubbing, LIMIT 10)");
  std::printf("%-7s %10s | %12s %12s | %12s %12s | %s\n", "scale", "frames",
              "det (plain)", "det (index)", "nn (plain)", "nn (index)",
              "identical");
  for (int64_t scale : {int64_t{1}, int64_t{10}, int64_t{100}}) {
    if (scale > max_scale) continue;
    const std::string dir =
        (fs::temp_directory_path() /
         ("blazeit-fig9-sketch-" + std::to_string(scale)))
            .string();
    fs::remove_all(dir);
    VideoCatalog catalog;
    if (!catalog.EnableDetectionStore(dir).ok()) std::abort();
    DayLengths lengths;
    lengths.train = 6000;
    lengths.held_out = 6000;
    lengths.test = 12000 * scale;
    if (!catalog.AddStream(StreamConfigByName("taipei").value(), lengths)
             .ok()) {
      std::abort();
    }
    StreamData* s = catalog.GetStream("taipei").value();
    int n = 5;
    RequirementStats stats;
    while (n > 1) {
      stats = CountRequirementInstances(*s, {{kBus, 1}, {kCar, n}});
      if (stats.events >= 25) break;
      --n;
    }
    const std::vector<ClassCountRequirement> reqs = {{kBus, 1}, {kCar, n}};

    ScrubbingExecutor plain_ex(s, {});
    auto plain = plain_ex.Run(reqs, 10, 0).value();

    if (!catalog.FlushDetectionStore().ok()) std::abort();
    if (!s->detection_store->BuildSketches(s->test_detections_ns).ok()) {
      std::abort();
    }
    ScrubOptions indexed_options;
    indexed_options.use_store_index = true;
    ScrubbingExecutor indexed_ex(s, indexed_options);
    auto indexed = indexed_ex.Run(reqs, 10, 0).value();

    const bool identical = indexed.frames == plain.frames;
    std::printf("%-7lld %10lld | %12lld %12lld | %12lld %12lld | %s\n",
                static_cast<long long>(scale),
                static_cast<long long>(lengths.test),
                static_cast<long long>(plain.detection_calls),
                static_cast<long long>(indexed.detection_calls),
                static_cast<long long>(plain.cost.specialized_nn_calls()),
                static_cast<long long>(indexed.cost.specialized_nn_calls()),
                identical ? "yes" : "NO (BUG)");
    fs::remove_all(dir);
    if (!identical) std::abort();
  }
  std::printf(
      "\nContract: identical frames, strictly less charged NN/detector "
      "work once whole segments are refuted by the sketches.\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog({"taipei"});
  StreamData* s = catalog.GetStream("taipei").value();
  PrintHeader(
      "Figure 9: sample complexity vs LIMIT for >=1 bus AND >=N cars in "
      "taipei (detection calls)");

  int n = 5;
  RequirementStats stats;
  while (n > 1) {
    stats = CountRequirementInstances(*s, {{kBus, 1}, {kCar, n}});
    if (stats.events >= 25) break;
    --n;
  }
  std::vector<ClassCountRequirement> reqs = {{kBus, 1}, {kCar, n}};
  std::printf("query: >=1 bus AND >=%d cars (%lld events available)\n\n", n,
              static_cast<long long>(stats.events));

  // Train once; re-rank for every LIMIT by re-running (the executor's NN
  // seed is fixed so training is identical; detections replay via the
  // cache, so wall-clock stays low while charges remain per-run).
  std::printf("%-8s %12s %12s %12s\n", "LIMIT", "Naive", "NoScope",
              "BlazeIt");
  for (int64_t limit : {1, 5, 10, 15, 20, 25, 30}) {
    auto naive = NaiveScrub(s, reqs, limit, 0);
    auto oracle = NoScopeOracleScrub(s, reqs, limit, 0);
    ScrubbingExecutor ex(s, {});
    auto r = ex.Run(reqs, limit, 0).value();
    std::printf("%-8lld %12lld %12lld %12lld%s\n",
                static_cast<long long>(limit),
                static_cast<long long>(naive.detection_calls),
                static_cast<long long>(oracle.detection_calls),
                static_cast<long long>(r.detection_calls),
                r.limit_satisfied
                    ? ""
                    : (r.scan_exhausted ? " (exhausted)" : " (incomplete)"));
  }
  std::printf(
      "\nShape check (paper): BlazeIt's complexity stays orders of "
      "magnitude below the scans for small LIMITs and converges toward "
      "them as LIMIT approaches the number of available events.\n");

  RunSketchLengthSweep(argc > 1 ? std::atoll(argv[1]) : 10);
  return 0;
}
