// Reproduces Figure 8: end-to-end runtime of multi-class scrubbing —
// at least one bus AND at least five cars in taipei, LIMIT 10 GAP 300 —
// under Naive / NoScope-oracle / BlazeIt / BlazeIt (indexed).
#include <cstdio>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/scrubbing.h"

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog({"taipei"});
  StreamData* s = catalog.GetStream("taipei").value();
  PrintHeader(
      "Figure 8: scrubbing for >=1 bus AND >=N cars in taipei "
      "(LIMIT 10 GAP 300, simulated seconds)");

  // The paper uses 5 cars over a 9h test day (63 instances); pick the
  // largest N with at least 12 events on our 1h day.
  int n = 5;
  RequirementStats stats;
  while (n > 1) {
    stats = CountRequirementInstances(*s, {{kBus, 1}, {kCar, n}});
    if (stats.events >= 12) break;
    --n;
  }
  std::vector<ClassCountRequirement> reqs = {{kBus, 1}, {kCar, n}};
  std::printf("query: >=1 bus AND >=%d cars; %lld matching frames in %lld "
              "events\n\n",
              n, static_cast<long long>(stats.matching_frames),
              static_cast<long long>(stats.events));

  auto naive = NaiveScrub(s, reqs, 10, 300);
  auto oracle = NoScopeOracleScrub(s, reqs, 10, 300);
  ScrubbingExecutor ex(s, {});
  auto r = ex.Run(reqs, 10, 300).value();

  std::printf("%-20s %12s %12s %8s\n", "Method", "Seconds", "DetCalls",
              "Speedup");
  std::printf("%-20s %11.0fs %12lld %8s\n", "Naive",
              naive.cost.TotalSeconds(),
              static_cast<long long>(naive.detection_calls), "1.0x");
  std::printf("%-20s %11.0fs %12lld %8s\n", "NoScope (oracle)",
              oracle.cost.TotalSeconds(),
              static_cast<long long>(oracle.detection_calls),
              Speedup(naive.cost.TotalSeconds(), oracle.cost.TotalSeconds())
                  .c_str());
  std::printf("%-20s %11.0fs %12lld %8s\n", "BlazeIt",
              r.cost.TotalSeconds(),
              static_cast<long long>(r.detection_calls),
              Speedup(naive.cost.TotalSeconds(), r.cost.TotalSeconds())
                  .c_str());
  std::printf("%-20s %11.0fs %12lld %8s\n", "BlazeIt (indexed)",
              r.indexed_seconds, static_cast<long long>(r.detection_calls),
              Speedup(naive.cost.TotalSeconds(), r.indexed_seconds).c_str());
  std::printf("found %zu/10 requested frames\n", r.frames.size());
  return 0;
}
