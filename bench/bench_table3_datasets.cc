// Reproduces Table 3: per-stream statistics (occupancy, average object
// duration, distinct count) of the evaluation streams, measured on the
// generated test day and compared against the paper's targets.
#include <cstdio>

#include "bench_common.h"

namespace blazeit {
namespace {

struct PaperRow {
  const char* stream;
  int class_id;
  double occupancy;
  double duration;
};

// Table 3 of the paper (occupancy %, average duration seconds).
constexpr PaperRow kPaperRows[] = {
    {"taipei", kBus, 0.119, 2.82},       {"taipei", kCar, 0.644, 1.43},
    {"night-street", kCar, 0.281, 3.94}, {"rialto", kBoat, 0.899, 10.7},
    {"grand-canal", kBoat, 0.577, 9.50}, {"amsterdam", kCar, 0.447, 7.88},
    {"archie", kCar, 0.518, 0.30},
};

}  // namespace
}  // namespace blazeit

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog();
  PrintHeader(
      "Table 3: video streams and object labels (measured on the test day; "
      "distinct counts are for 1h of video vs the paper's 24-33h)");
  std::printf("%-14s %-6s %10s %10s %12s %12s %9s %6s %9s\n", "Video",
              "Object", "Occup.", "(paper)", "AvgDur(s)", "(paper)",
              "Distinct", "FPS", "Resol.");
  for (const auto& row : kPaperRows) {
    StreamData* s = catalog.GetStream(row.stream).value();
    double occ = s->test_day->MeasureOccupancy(row.class_id);
    double dur = s->test_day->MeanDurationSeconds(row.class_id);
    int64_t distinct = s->test_day->DistinctTracks(row.class_id);
    std::printf("%-14s %-6s %9.1f%% %9.1f%% %12.2f %12.2f %9lld %6d %dx%d\n",
                row.stream, ClassName(row.class_id), occ * 100,
                row.occupancy * 100, dur, row.duration,
                static_cast<long long>(distinct), s->config.fps,
                s->config.width, s->config.height);
  }
  std::printf(
      "\nDetector-level occupancy (what the labeled sets see, including "
      "misses on small objects):\n");
  for (const auto& row : kPaperRows) {
    StreamData* s = catalog.GetStream(row.stream).value();
    std::printf("  %-14s %-6s %5.1f%%\n", row.stream,
                ClassName(row.class_id),
                s->test_labels->Occupancy(row.class_id) * 100);
  }
  return 0;
}
