// Micro-benchmarks (google-benchmark) for the per-frame building blocks:
// rendering, feature extraction, specialized-NN inference, filters, and the
// simulated detector. These are the wall-clock costs of the simulator; the
// *modeled* costs used in the experiment harnesses come from sim/cost_model.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "core/labeled_set.h"
#include "core/udf.h"
#include "detect/simulated_detector.h"
#include "exec/frame_pipeline.h"
#include "exec/thread_pool.h"
#include "nn/specialized_nn.h"
#include "nn/tensor.h"
#include "stats/control_variates.h"
#include "stats/sampler.h"
#include "util/random.h"
#include "video/datasets.h"
#include "video/render_features.h"

namespace blazeit {
namespace {

const SyntheticVideo& Video() {
  static auto video =
      SyntheticVideo::Create(TaipeiConfig(), 1, 36000).value().release();
  return *video;
}

void BM_RenderFrame(benchmark::State& state) {
  int64_t frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Video().RenderFrame(frame++ % 36000, 64, 64));
  }
}
BENCHMARK(BM_RenderFrame);

void BM_FrameFeatures(benchmark::State& state) {
  int64_t frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FrameFeatures(Video(), frame++ % 36000, 32, 32));
  }
}
BENCHMARK(BM_FrameFeatures);

void BM_SimulatedDetector(benchmark::State& state) {
  SimulatedDetector det;
  int64_t frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.Detect(Video(), frame++ % 36000));
  }
}
BENCHMARK(BM_SimulatedDetector);

void BM_GroundTruth(benchmark::State& state) {
  int64_t frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Video().GroundTruth(frame++ % 36000));
  }
}
BENCHMARK(BM_GroundTruth);

void BM_RednessUdf(benchmark::State& state) {
  Image img = Video().RenderFrame(0, 64, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(UdfRegistry::Redness(img));
  }
}
BENCHMARK(BM_RednessUdf);

void BM_SpecializedNNInference(benchmark::State& state) {
  static SpecializedNN* nn = [] {
    SimulatedDetector det;
    LabeledSet labels(&Video(), &det, 0.5);
    SpecializedNNConfig cfg;
    cfg.max_train_frames = 4000;
    return new SpecializedNN(
        SpecializedNN::Train(Video(), {labels.Counts(kCar)}, cfg).value());
  }();
  const int batch = static_cast<int>(state.range(0));
  std::vector<int64_t> frames(static_cast<size_t>(batch));
  std::iota(frames.begin(), frames.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn->ExpectedCountsForFrames(Video(), frames));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SpecializedNNInference)->Arg(1)->Arg(64)->Arg(256);

// GEMM kernels at the specialized-NN shapes: the trunk forward pass
// dominates batched inference ([batch, w*h*4] x [w*h*4, hidden]); the
// transpose variants are the weight/input gradients of training. ReLU-like
// sparsity is deliberately absent (features are dense), making these the
// worst-case kernel cost.
Matrix RandomMatrix(Rng* rng, int rows, int cols) {
  Matrix m(rows, cols);
  for (float& v : m.data()) v = static_cast<float>(rng->Normal(0.0, 1.0));
  return m;
}

void BM_MatMul(benchmark::State& state) {
  Rng rng(1);
  Matrix a = RandomMatrix(&rng, 256, 4096);
  Matrix b = RandomMatrix(&rng, 4096, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 256 * 4096 * 64);
}
BENCHMARK(BM_MatMul);

void BM_MatMulTransposeA(benchmark::State& state) {
  Rng rng(2);
  Matrix a = RandomMatrix(&rng, 256, 4096);  // cached input (batch-major)
  Matrix g = RandomMatrix(&rng, 256, 64);    // upstream gradient
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransposeA(a, g));
  }
  state.SetItemsProcessed(state.iterations() * 256 * 4096 * 64);
}
BENCHMARK(BM_MatMulTransposeA);

void BM_MatMulTransposeB(benchmark::State& state) {
  Rng rng(3);
  Matrix g = RandomMatrix(&rng, 256, 64);    // upstream gradient
  Matrix w = RandomMatrix(&rng, 4096, 64);   // layer weights
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransposeB(g, w));
  }
  state.SetItemsProcessed(state.iterations() * 256 * 4096 * 64);
}
BENCHMARK(BM_MatMulTransposeB);

// ---------------------------------------------------------------------------
// Thread-count axes (PR 4): the sharded frame pipeline and batched NN
// inference at pool sizes 1/2/4/8. On a multi-core machine these are the
// scaling benches BENCH_pr4.json records (expect near-linear on the
// render-bound sweep); on a single core they pin the overhead of the
// sharding machinery at ~zero. Outputs are bit-identical across the axis
// — only wall clock may move.
// ---------------------------------------------------------------------------

void BM_FrameFeaturesBatchThreads(benchmark::State& state) {
  exec::ThreadPool::Instance().Reconfigure(static_cast<int>(state.range(0)));
  constexpr int64_t kBatch = 1024;
  constexpr int kGrid = 32;
  constexpr size_t kRow = static_cast<size_t>(kGrid) * kGrid * 4;
  std::vector<float> features(kBatch * kRow);
  for (auto _ : state) {
    exec::FramePipeline::Run(
        kBatch, 64,
        [&](int64_t begin, int64_t end, exec::FramePipeline::Scratch* s) {
          for (int64_t i = begin; i < end; ++i) {
            RenderFrameFeatures(Video(), i % 36000, kGrid, kGrid,
                                features.data() + static_cast<size_t>(i) * kRow,
                                &s->image);
          }
        });
    benchmark::DoNotOptimize(features.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  exec::ThreadPool::Instance().Reconfigure(exec::ThreadPool::ThreadsFromEnv());
}
BENCHMARK(BM_FrameFeaturesBatchThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SpecializedNNInferenceThreads(benchmark::State& state) {
  static SpecializedNN* nn = [] {
    SimulatedDetector det;
    LabeledSet labels(&Video(), &det, 0.5);
    SpecializedNNConfig cfg;
    cfg.max_train_frames = 4000;
    return new SpecializedNN(
        SpecializedNN::Train(Video(), {labels.Counts(kCar)}, cfg).value());
  }();
  exec::ThreadPool::Instance().Reconfigure(static_cast<int>(state.range(0)));
  constexpr int64_t kBatch = 2048;
  std::vector<int64_t> frames(static_cast<size_t>(kBatch));
  std::iota(frames.begin(), frames.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn->ExpectedCountsForFrames(Video(), frames));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  exec::ThreadPool::Instance().Reconfigure(exec::ThreadPool::ThreadsFromEnv());
}
BENCHMARK(BM_SpecializedNNInferenceThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MatMulThreads(benchmark::State& state) {
  exec::ThreadPool::Instance().Reconfigure(static_cast<int>(state.range(0)));
  Rng rng(1);
  Matrix a = RandomMatrix(&rng, 256, 4096);
  Matrix b = RandomMatrix(&rng, 4096, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 256 * 4096 * 64);
  exec::ThreadPool::Instance().Reconfigure(exec::ThreadPool::ThreadsFromEnv());
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_AdaptiveSampler(benchmark::State& state) {
  // Sampler loop cost on a pre-computed array (no detector in the loop).
  std::vector<double> values(100000);
  Rng rng(3);
  for (auto& v : values) v = rng.Poisson(1.0);
  for (auto _ : state) {
    SamplingConfig cfg;
    cfg.error = 0.05;
    cfg.value_range = 8;
    cfg.seed = 1;
    benchmark::DoNotOptimize(AdaptiveSample(
        100000,
        [&](int64_t f) { return values[static_cast<size_t>(f)]; }, cfg));
  }
}
BENCHMARK(BM_AdaptiveSampler);

}  // namespace
}  // namespace blazeit

BENCHMARK_MAIN();
