// Reproduces Figure 5: sample complexity of naive AQP vs AQP with control
// variates (specialized NN as the auxiliary), for absolute error targets
// 0.01..0.05 and 0.1, averaged over 100 runs per level, on all six streams.
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "core/aggregation.h"
#include "stats/control_variates.h"
#include "stats/online_stats.h"
#include "stats/sampler.h"

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog();
  PrintHeader(
      "Figure 5: sample complexity, naive AQP vs control variates "
      "(100 runs per error level, 95% confidence)");

  struct Row {
    const char* stream;
    int class_id;
  };
  const Row rows[] = {{"taipei", kCar},      {"night-street", kCar},
                      {"rialto", kBoat},     {"grand-canal", kBoat},
                      {"amsterdam", kCar},   {"archie", kCar}};
  const double kErrors[] = {0.01, 0.02, 0.03, 0.04, 0.05, 0.1};
  const int kRuns = 100;

  for (const Row& row : rows) {
    StreamData* s = catalog.GetStream(row.stream).value();
    // Train the counting NN once; sampling replays its cached outputs (the
    // paper pre-computed detections the same way).
    AggregateOptions opt;
    opt.allow_query_rewrite = false;  // force the sampling path
    AggregationExecutor ex(s, opt);
    auto warmup = ex.Run(row.class_id, 0.1, 0.95);
    if (!warmup.ok()) {
      std::printf("%s: %s\n", row.stream, warmup.status().ToString().c_str());
      continue;
    }
    const std::vector<float>& proxy_counts = ex.nn_counts();
    const std::vector<int>& truth = s->test_labels->Counts(row.class_id);
    const int64_t n = s->test_day->num_frames();
    // Exact proxy moments.
    OnlineStats proxy_stats;
    for (float v : proxy_counts) proxy_stats.Add(v);
    ControlVariate cv;
    cv.tau = proxy_stats.Mean();
    cv.variance = proxy_stats.PopulationVariance();
    cv.proxy = [&](int64_t f) {
      return static_cast<double>(proxy_counts[static_cast<size_t>(f)]);
    };
    double value_range = s->train_labels->MaxCount(row.class_id) + 1.0;

    std::printf("\n%s (%s), NN/detector correlation %.3f:\n", row.stream,
                ClassName(row.class_id), warmup.value().nn_correlation);
    std::printf("  %-8s %12s %14s %10s\n", "error", "naive-AQP",
                "control-var", "reduction");
    for (double err : kErrors) {
      double naive_sum = 0, cv_sum = 0;
      for (int run = 0; run < kRuns; ++run) {
        SamplingConfig cfg;
        cfg.error = err;
        cfg.value_range = value_range;
        cfg.seed = 10000 + static_cast<uint64_t>(run);
        FrameOracle oracle = [&](int64_t f) {
          return static_cast<double>(truth[static_cast<size_t>(f)]);
        };
        naive_sum += static_cast<double>(
            AdaptiveSample(n, oracle, cfg).value().samples_used);
        cv_sum += static_cast<double>(
            ControlVariateSample(n, oracle, cv, cfg).value().samples_used);
      }
      std::printf("  %-8.2f %12.0f %14.0f %9.2fx\n", err, naive_sum / kRuns,
                  cv_sum / kRuns, naive_sum / std::max(1.0, cv_sum));
    }
  }
  std::printf(
      "\nAs in the paper, the reduction factor grows with the correlation "
      "between the specialized NN and the detector counts.\n");
  return 0;
}
