// Reproduces Figure 10: end-to-end runtime of the content-based selection
// query of Figure 3c (red buses, large, persistent, in the transit lane)
// under Naive / NoScope-oracle / BlazeIt, with event-level recall against
// the scene ground truth (all BlazeIt errors are false negatives).
#include <cstdio>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/selection.h"
#include "frameql/parser.h"

int main() {
  using namespace blazeit;
  using namespace blazeit::bench;
  VideoCatalog catalog = BuildCatalog({"taipei"});
  StreamData* s = catalog.GetStream("taipei").value();
  UdfRegistry udfs;
  PrintHeader(
      "Figure 10: content-based selection of red buses (Figure 3c "
      "analogue; simulated seconds)");

  // Figure 3c with thresholds rescaled to our scene (redness in [0,1],
  // area for our bus sizes; see EXPERIMENTS.md).
  const char* kQuery =
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND redness(content) >= 0.25 AND area(mask) > 20000 "
      "AND xmin(mask) >= 0.4 AND ymin(mask) >= 0.5 "
      "GROUP BY trackid HAVING COUNT(*) > 15";
  std::printf("query: %s\n\n", kQuery);
  auto parsed = ParseFrameQL(kQuery);
  auto query = AnalyzeQuery(parsed.value(), s->config).value();

  auto naive = NaiveSelection(s, &udfs, query).value();
  auto oracle = NoScopeOracleSelection(s, &udfs, query).value();
  SelectionExecutor ex(s, &udfs, {});
  auto r = ex.Run(query).value();
  auto gt = GroundTruthSelectionEvents(*s->test_day, query, udfs);

  auto recall = [&](const SelectionResult& res) {
    if (gt.empty()) return 1.0;
    int64_t hit = 0;
    for (const auto& g : gt) {
      for (const auto& e : res.events) {
        if (e.first_frame <= g.last_frame + 14 &&
            e.last_frame >= g.first_frame - 14) {
          ++hit;
          break;
        }
      }
    }
    return static_cast<double>(hit) / static_cast<double>(gt.size());
  };

  std::printf("%-20s %12s %10s %10s %8s\n", "Method", "Seconds",
              "DetFrames", "Recall", "Speedup");
  std::printf("%-20s %11.0fs %10lld %9.0f%% %8s\n", "Naive",
              naive.cost.TotalSeconds(),
              static_cast<long long>(naive.frames_detected),
              recall(naive) * 100, "1.0x");
  std::printf("%-20s %11.0fs %10lld %9.0f%% %8s\n", "NoScope (oracle)",
              oracle.cost.TotalSeconds(),
              static_cast<long long>(oracle.frames_detected),
              recall(naive) * 100,
              Speedup(naive.cost.TotalSeconds(), oracle.cost.TotalSeconds())
                  .c_str());
  std::printf("%-20s %11.0fs %10lld %9.0f%% %8s\n", "BlazeIt",
              r.cost.TotalSeconds(),
              static_cast<long long>(r.frames_detected), recall(r) * 100,
              Speedup(naive.cost.TotalSeconds(), r.cost.TotalSeconds())
                  .c_str());
  std::printf("\nplan: %s\n", r.plan.c_str());
  std::printf("ground-truth events: %zu; BlazeIt events: %zu; rows: %zu\n",
              gt.size(), r.events.size(), r.rows.size());
  return 0;
}
